"""Shared machinery for the windowed, reliable transports.

TCP, RUDP and IQ-RUDP all share one sender/receiver skeleton and differ only
in their pluggable parts:

=================  =====================  ==========================
Part               TCP                    RUDP / IQ-RUDP
=================  =====================  ==========================
Congestion law     :class:`RenoCC`        :class:`LdaCC` (epoch based)
Reliability        full                   loss tolerant (marking/skips)
Coordinator        --                     Null (RUDP) / IQ (IQ-RUDP)
=================  =====================  ==========================

The sender is message oriented (the paper's RUDP is datagram based): the
application submits datagrams/frames of arbitrary size, the transport
segments them into MSS packets, numbers packets at *first transmission* (so
locally-discarded unmarked datagrams leave no sequence holes) and provides
in-order reliable delivery with cumulative ACKs, duplicate-ACK fast
retransmit and an RFC 6298 retransmission timer.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from ..core.attributes import AttributeService, AttributeSet
from ..core.callbacks import CallbackRegistry
from ..obs.events import (ATTR_SENT, CALLBACK_FIRED, CWND_CHANGE,
                          FRAME_ABANDONED, PACKET_ACK, PACKET_RETX,
                          PACKET_SEND)
from ..core.coordination import Coordinator, NullCoordinator
from ..core.metrics_export import MetricsWindow
from ..sim.engine import Event, Simulator
from ..sim.node import Host
from ..sim.packet import HEADER_BYTES, Packet, PacketKind
from .cc import CongestionControl
from .reliability import FullReliability, ReliabilityPolicy
from .rtt import RttEstimator
from .seqspace import ReorderBuffer

__all__ = ["FlowStats", "WindowedSender", "WindowedReceiver",
           "make_flow_id", "DUP_ACK_THRESHOLD"]

DUP_ACK_THRESHOLD = 3

def make_flow_id(sim) -> int:
    """Flow identifier unique within ``sim``.

    Ids come from a per-simulator counter, never process-global state:
    identical configs then produce identical flow ids (and identical trace
    streams) no matter how many runs the process executed before.
    """
    return sim.next_flow_id()


class FlowStats:
    """Lifetime counters for one direction of a connection."""

    __slots__ = ("submitted_msgs", "submitted_bytes", "submitted_segments",
                 "discarded_msgs",
                 "discarded_bytes", "packets_sent", "bytes_sent",
                 "retransmissions", "skips_sent", "timeouts",
                 "fast_retransmits", "acked_packets", "acked_bytes",
                 "delivered_packets", "delivered_bytes", "skipped_received",
                 "duplicates", "stalls", "stall_recoveries",
                 "expired_msgs", "expired_bytes")

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class WindowedSender:
    """Reliable, congestion-controlled, message-oriented sender endpoint.

    Parameters
    ----------
    sim, host : simulation context and the local host (binds ``port``).
    peer_addr, peer_port : destination address/port.
    cc : congestion-control strategy (owns the window).
    reliability : skip policy for lost unmarked packets.
    coordinator : IQ-RUDP coordination engine (Null for plain RUDP/TCP).
    callbacks : threshold-callback registry evaluated each metric period.
    service : attribute service metrics are exported into.
    metric_period : measurement period for exported metrics/callbacks
        (section 3.1's "measuring period").
    rwnd : receiver advertised window in packets (flow control bound).
    rto_jitter : fraction of the RTO added as deterministic random jitter
        (``rto * (1 + rto_jitter * U[0,1))``) so flows that stalled on the
        same outage do not retransmit in lock-step when the link returns.
        Needs ``rto_rng`` (a seeded stream from :mod:`repro.sim.rand`);
        0.0 (the default) disables jitter entirely.
    stall_threshold : consecutive head-of-line timeouts without forward
        progress before the sender declares the path *stalled*: metric
        periods measured while stalled are flagged as blackout (they do
        not drive adaptation callbacks or ADAPT_COND corrections) and the
        coordinator's ``on_stall``/``on_resume`` hooks fire for graceful
        degradation.  0 (the default) disables stall detection.
    """

    #: Telemetry payload reference (:class:`repro.obs.telemetry.Telemetry`)
    #: set by an armed :class:`~repro.obs.telemetry.TelemetryRecorder`; a
    #: class attribute so the disarmed path never allocates or writes
    #: anything -- consumers pay one ``is None`` check, and only on cold
    #: paths (coordination actions), never per packet.
    telemetry = None

    #: Span recorder (:class:`repro.obs.spans.SpanRecorder`) installed by
    #: ``watch_flow`` when the scenario arms lineage capture; same
    #: class-attribute idiom as ``telemetry``.
    spans = None

    #: Flight recorder (:class:`repro.obs.flight.FlightRecorder`) inherited
    #: from the simulator at construction; notes sit only on cold paths
    #: (retransmissions, RTOs, stalls, discards, completion).
    flight = None

    #: FEC repair coder (:class:`repro.transport.fec.FecSender`) armed by
    #: the connection when a :class:`~repro.transport.fec.FecConfig` is
    #: configured; class attribute so the disarmed pump pays one ``is
    #: None`` check per first transmission and nothing else.
    fec_tx = None

    def __init__(self, sim: Simulator, host: Host, *, port: int,
                 peer_addr: int, peer_port: int, cc: CongestionControl,
                 mss: int = 1400,
                 reliability: ReliabilityPolicy | None = None,
                 coordinator: Coordinator | None = None,
                 callbacks: CallbackRegistry | None = None,
                 service: AttributeService | None = None,
                 metric_period: float = 0.5,
                 rwnd: int = 128,
                 min_rto: float = 0.2,
                 use_eack: bool = False,
                 flow_id: int | None = None,
                 on_complete: Callable[[float], None] | None = None,
                 on_space: Callable[[], None] | None = None,
                 rto_jitter: float = 0.0,
                 rto_rng=None,
                 stall_threshold: int = 0):
        if mss <= 0:
            raise ValueError("mss must be positive")
        if rto_jitter < 0:
            raise ValueError("rto_jitter cannot be negative")
        if rto_jitter > 0 and rto_rng is None:
            raise ValueError("rto_jitter needs an rto_rng stream")
        if stall_threshold < 0:
            raise ValueError("stall_threshold cannot be negative")
        self.sim = sim
        self.host = host
        self.port = port
        self.peer_addr = peer_addr
        self.peer_port = peer_port
        self.cc = cc
        self.mss = mss
        self.rwnd = rwnd
        self.flow_id = flow_id if flow_id is not None else make_flow_id(sim)
        self.reliability = reliability or FullReliability()
        self.coordinator = coordinator or NullCoordinator()
        self.coordinator.bind(self)
        self.callbacks = (callbacks if callbacks is not None
                          else CallbackRegistry())
        self.service = service if service is not None else AttributeService()
        self.rtt = RttEstimator(min_rto=min_rto)
        self.metrics = MetricsWindow(metric_period, self.service)
        self.stats = FlowStats()
        self.on_complete = on_complete
        self.on_space = on_space

        # Send state.
        self._pending: deque[Packet] = deque()   # segments awaiting first tx
        self._window: dict[int, Packet] = {}     # seq -> canonical packet
        self.snd_una = 0
        self.snd_nxt = 0
        self._dup_acks = 0
        self._in_recovery = False
        self._recover_point = 0
        self.use_eack = use_eack
        self._sacked: set[int] = set()
        # seq -> time of last EACK-driven repair; a hole becomes eligible
        # again one RTT after its last repair (lost repairs retry without
        # waiting for the RTO backstop).
        self._repaired: dict[int, float] = {}
        self._rto_event: Event | None = None
        self._finished = False
        self._completed = False
        self.backlog_bytes = 0
        self.low_water_bytes = 4 * mss

        # Dynamics hardening (inert unless configured; see class docstring).
        self.rto_jitter = rto_jitter
        self._rto_rng = rto_rng
        self.stall_threshold = stall_threshold
        self._consec_timeouts = 0
        self._stalled = False

        # Coordination-visible state.
        self.discard_unmarked = False
        self.last_frame_size = 0

        # Duplicate-ACK fast-retransmit trigger; per-sender so an armed FEC
        # tier can raise it (giving an in-flight repair segment the chance
        # to fill the hole before cwnd-halving ARQ fires).  Defaults to the
        # module constant, so disarmed behaviour is bit-identical.
        self.dup_ack_threshold = DUP_ACK_THRESHOLD
        # True once any submitted segment carried a delivery deadline;
        # config-deterministic, read by the metrics collector to keep
        # deadline counters out of disarmed summaries.
        self.deadline_armed = False

        # Epoch counters (LDA).
        self._epoch_sent = 0
        self._epoch_lost = 0
        self._epoch_max_inflight = 0

        # Tracing: cache the bus; with tracing off every hook below is one
        # attribute check.  The cwnd observer is wired only when tracing is
        # on so the congestion laws keep their zero-overhead default.
        tr = sim.bus
        self.trace = tr
        self.flight = getattr(sim, "flight", None)
        if tr.enabled:
            self.metrics.trace = tr
            self.metrics.flow = self.flow_id

            def _cwnd_observed(reason: str, old: float, new: float,
                               _tr=tr, _flow=self.flow_id) -> None:
                _tr.emit("transport", CWND_CHANGE, flow=_flow,
                         reason=reason, old=old, new=new)

            self.cc.observer = _cwnd_observed

        host.bind(port, self)
        if self.cc.needs_epochs:
            self.sim.schedule(metric_period, self._noop)  # keep heap warm
            self.sim.schedule(self._epoch_len(), self._epoch_tick)
        self.sim.schedule(metric_period, self._metric_tick)

    @staticmethod
    def _noop() -> None:
        pass

    # ------------------------------------------------------------------
    # Application interface
    # ------------------------------------------------------------------
    def submit(self, size: int, *, marked: bool = True, tagged: bool = False,
               frame_id: int = -1, attrs: AttributeSet | None = None,
               deadline: float = 0.0) -> int:
        """Enqueue one application datagram/frame of ``size`` payload bytes.

        Frames larger than the MSS are segmented; all segments share the
        frame's marking.  Piggybacked ``attrs`` (the ``cmwritev_attr`` path)
        are handed to the coordinator immediately -- the attribute describes
        an adaptation taking effect with this message.  A positive
        ``deadline`` (absolute simulation time) lets the pump abandon the
        frame's untransmitted segments once it passes -- stale media blocks
        the window for nothing.  Returns the number of segments queued.
        """
        if size <= 0:
            raise ValueError("datagram size must be positive")
        if self._finished:
            raise RuntimeError("submit after finish()")
        self.last_frame_size = size
        if attrs:
            tr = self.trace
            if tr.enabled:
                tr.emit("transport", ATTR_SENT, flow=self.flow_id,
                        via="cmwritev_attr", attrs=attrs.as_dict())
            self.coordinator.on_send_attrs(attrs)
        now = self.sim.now
        nseg = (size + self.mss - 1) // self.mss
        remaining = size
        sp = self.spans
        for i in range(nseg):
            seg = min(self.mss, remaining)
            remaining -= seg
            pkt = Packet(flow_id=self.flow_id, kind=PacketKind.DATA,
                         size=seg, src=self.host.address, dst=self.peer_addr,
                         sport=self.port, dport=self.peer_port,
                         created_at=now, marked=marked, tagged=tagged,
                         frame_id=frame_id)
            pkt.last_of_frame = (i == nseg - 1)
            if deadline > 0.0:
                pkt.deadline = deadline
                self.deadline_armed = True
            if sp is not None:
                sp.on_segment(pkt)
            self._pending.append(pkt)
            self.backlog_bytes += seg
        self.stats.submitted_msgs += 1
        self.stats.submitted_bytes += size
        self.stats.submitted_segments += nseg
        self._pump()
        return nseg

    def submit_burst(self, sizes, *, marked: bool = True,
                     tagged: bool = False, first_frame_id: int = -1) -> int:
        """Enqueue many application datagrams in one call (burst hot path).

        Equivalent to consecutive :meth:`submit` calls at the same instant,
        except the window pump (and any resulting ``on_space`` re-entry)
        runs once after the whole batch instead of once per datagram --
        which is the point: population workloads submit their entire
        transfer up front, and per-datagram pumping is quadratic noise
        there.  ``first_frame_id >= 0`` numbers frames consecutively from
        it; -1 leaves frames unnumbered.  Returns total segments queued.
        """
        if self._finished:
            raise RuntimeError("submit after finish()")
        mss = self.mss
        now = self.sim.now
        pending = self._pending
        st = self.stats
        flow_id = self.flow_id
        src = self.host.address
        dst = self.peer_addr
        sport = self.port
        dport = self.peer_port
        sp = self.spans
        total_seg = 0
        for n, size in enumerate(sizes):
            if size <= 0:
                raise ValueError("datagram size must be positive")
            self.last_frame_size = size
            frame_id = first_frame_id + n if first_frame_id >= 0 else -1
            nseg = (size + mss - 1) // mss
            remaining = size
            for i in range(nseg):
                seg = min(mss, remaining)
                remaining -= seg
                pkt = Packet(flow_id=flow_id, kind=PacketKind.DATA,
                             size=seg, src=src, dst=dst, sport=sport,
                             dport=dport, created_at=now, marked=marked,
                             tagged=tagged, frame_id=frame_id)
                pkt.last_of_frame = (i == nseg - 1)
                if sp is not None:
                    sp.on_segment(pkt)
                pending.append(pkt)
                self.backlog_bytes += seg
            st.submitted_msgs += 1
            st.submitted_bytes += size
            st.submitted_segments += nseg
            total_seg += nseg
        self._pump()
        return total_seg

    def finish(self) -> None:
        """Declare end of application data; ``on_complete`` fires once all
        submitted data is acknowledged (or locally discarded/skipped)."""
        self._finished = True
        fx = self.fec_tx
        if fx is not None:
            fx.flush()  # protect the transfer tail's partial generation
        self._check_complete()

    @property
    def inflight(self) -> int:
        return self.snd_nxt - self.snd_una

    @property
    def window_limit(self) -> int:
        return min(int(self.cc.cwnd), self.rwnd)

    def current_error_ratio(self) -> float:
        """Most recent *clean* period's error ratio (the coordination
        engine's ``eratio_new`` in Eq. 1).  Blackout-flagged periods are
        excluded -- an outage's ~100% loss describes a dead link, not
        congestion, and would wreck the ADAPT_COND drift correction."""
        return self.metrics.last_clean_error_ratio

    @property
    def stalled(self) -> bool:
        """True while stall detection believes the path is dead."""
        return self._stalled

    def telemetry_probe(self) -> dict[str, float]:
        """Read-only snapshot of the send-side state the telemetry
        recorder samples each cadence tick.  Pure reads -- probing must
        never perturb the run it observes."""
        probe = self.cc.telemetry_probe()
        probe["flightsize"] = float(self.inflight)
        probe["srtt_s"] = self.rtt.rtt
        probe["rto_s"] = self.rtt.rto
        probe["loss_ratio"] = self.metrics.lifetime_error_ratio
        return probe

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        """Send as much pending data as the window allows."""
        sent_any = False
        while self._pending and self.inflight < self.window_limit:
            pkt = self._pending[0]
            if self.discard_unmarked and not pkt.marked:
                # Conflict-scheme local discard: the datagram never gets a
                # sequence number and never touches the network.
                self._pending.popleft()
                self.backlog_bytes -= pkt.size
                self.stats.discarded_msgs += 1
                self.stats.discarded_bytes += pkt.size
                sp = self.spans
                if sp is not None:
                    sp.on_discard(pkt)
                fl = self.flight
                if fl is not None:
                    fl.note("transport", "DISCARD", flow=self.flow_id,
                            frame=pkt.frame_id, size=pkt.size)
                continue
            if (pkt.deadline and not pkt.tagged
                    and self.sim.now > pkt.deadline):
                # Deadline-aware scheduling: the frame is already stale at
                # the display, so transmitting it (and retransmitting its
                # losses) would only delay fresher frames.  Like the local
                # discard above, the segment never gets a sequence number.
                # Tagged control segments are exempt -- they must arrive.
                self._pending.popleft()
                self.backlog_bytes -= pkt.size
                self.stats.expired_msgs += 1
                self.stats.expired_bytes += pkt.size
                sp = self.spans
                if sp is not None:
                    sp.on_expire(pkt)
                fl = self.flight
                if fl is not None:
                    fl.note("transport", "EXPIRE", flow=self.flow_id,
                            frame=pkt.frame_id, size=pkt.size,
                            late=self.sim.now - pkt.deadline)
                tr = self.trace
                if tr.enabled:
                    tr.emit("transport", FRAME_ABANDONED, flow=self.flow_id,
                            frame=pkt.frame_id, size=pkt.size,
                            late=self.sim.now - pkt.deadline)
                continue
            self._pending.popleft()
            self.backlog_bytes -= pkt.size
            pkt.seq = self.snd_nxt
            self.snd_nxt += 1
            self._window[pkt.seq] = pkt
            self._transmit(pkt)
            fx = self.fec_tx
            if fx is not None:
                # Enroll the first transmission into the open FEC
                # generation (retransmissions are ARQ's concern).
                fx.on_data(pkt)
            sent_any = True
        if sent_any and self._rto_event is None:
            self._arm_rto()
        if (self.on_space is not None and not self._finished
                and self.backlog_bytes < self.low_water_bytes):
            self.on_space()
        if self._finished:
            self._check_complete()

    def _transmit(self, pkt: Packet) -> None:
        pkt.sent_at = self.sim.now
        wire = pkt.copy()
        wire.sent_at = pkt.sent_at
        if wire.skip:
            # A hole-fill segment carries no payload; wire_size is a
            # precomputed slot, so it must be rewritten alongside size.
            wire.size = 0
            wire.wire_size = HEADER_BYTES
        sp = self.spans
        if sp is not None:
            sp.on_transmit(pkt)
        tr = self.trace
        if tr.enabled:
            tr.emit("transport", PACKET_SEND, flow=self.flow_id, pkt=pkt.seq,
                    size=wire.size, marked=pkt.marked, skip=pkt.skip,
                    inflight=self.inflight)
        self.host.send(wire)
        self.stats.packets_sent += 1
        self.stats.bytes_sent += wire.size
        self.metrics.count_sent()
        self._epoch_sent += 1
        if self.inflight > self._epoch_max_inflight:
            self._epoch_max_inflight = self.inflight

    def _retransmit(self, seq: int, *, timeout: bool) -> None:
        pkt = self._window.get(seq)
        if pkt is None:
            return
        self.metrics.count_lost()
        self._epoch_lost += 1
        if not pkt.skip and self.reliability.allow_skip(
                pkt, self.stats.skips_sent, self.stats.acked_packets):
            pkt.skip = True
            self.stats.skips_sent += 1
        else:
            pkt.retransmit += 1
            self.stats.retransmissions += 1
        fl = self.flight
        if fl is not None:
            fl.note("transport", "RETX", flow=self.flow_id, pkt=seq,
                    reason="timeout" if timeout else "fast", skip=pkt.skip)
        tr = self.trace
        if tr.enabled:
            tr.emit("transport", PACKET_RETX, flow=self.flow_id, pkt=seq,
                    reason="timeout" if timeout else "fast", skip=pkt.skip)
        self._transmit(pkt)
        if timeout:
            self.stats.timeouts += 1

    # ------------------------------------------------------------------
    # Receive path (ACKs)
    # ------------------------------------------------------------------
    def receive(self, pkt: Packet) -> None:
        if pkt.kind != PacketKind.ACK or pkt.flow_id != self.flow_id:
            return
        ack = pkt.ack
        if self.use_eack and pkt.sack:
            self._sacked.update(s for s in pkt.sack if s >= ack)
        if ack > self.snd_una:
            self._on_new_ack(ack)
        elif ack == self.snd_una and self.inflight > 0:
            self._on_dup_ack()

    def _on_new_ack(self, ack: int) -> None:
        newly = ack - self.snd_una
        tr = self.trace
        if tr.enabled:
            tr.emit("transport", PACKET_ACK, flow=self.flow_id, ack=ack,
                    newly=newly)
        if self._consec_timeouts:
            self._consec_timeouts = 0
            if self._stalled:
                self._stalled = False
                self.stats.stall_recoveries += 1
                fl = self.flight
                if fl is not None:
                    fl.note("transport", "RESUME", flow=self.flow_id,
                            recoveries=self.stats.stall_recoveries)
                self.coordinator.on_resume(self.sim.now)
        sample: float | None = None
        for s in range(self.snd_una, ack):
            entry = self._window.pop(s, None)
            if entry is not None:
                self.stats.acked_packets += 1
                self.stats.acked_bytes += entry.size
                self.metrics.count_acked_bytes(entry.size)
                if entry.retransmit == 0 and not entry.skip:
                    sample = self.sim.now - entry.sent_at
        self.snd_una = ack
        self._dup_acks = 0
        if self._sacked:
            self._sacked = {s for s in self._sacked if s >= ack}
        if sample is not None:
            self.rtt.sample(sample)
        if self._in_recovery:
            if ack >= self._recover_point:
                self._in_recovery = False
                self._repaired.clear()
                self.cc.on_recovery_exit()
            elif self.use_eack:
                # The new head may already have been repaired by the EACK
                # sweep; retransmitting it again would double-count the loss.
                if self._repair_eligible(self.snd_una):
                    self._repaired[self.snd_una] = self.sim.now
                    self._retransmit(self.snd_una, timeout=False)
                self._eack_repair(budget=3)
            else:
                # NewReno-style partial ACK: the next hole is also lost.
                self._retransmit(self.snd_una, timeout=False)
        else:
            self.cc.on_ack(newly)
        self._arm_rto()
        self._pump()
        self._check_complete()

    def _on_dup_ack(self) -> None:
        self._dup_acks += 1
        if self._in_recovery:
            self.cc.on_dupack_in_recovery()
            if self.use_eack:
                self._eack_repair(budget=1)
            self._pump()
        elif self._dup_acks == self.dup_ack_threshold:
            self.stats.fast_retransmits += 1
            self._in_recovery = True
            self._recover_point = self.snd_nxt
            self.cc.on_fast_retransmit(self.inflight)
            self._retransmit(self.snd_una, timeout=False)
            if self.use_eack:
                self._repaired[self.snd_una] = self.sim.now
                self._eack_repair(budget=2)
            self._arm_rto()

    def _repair_eligible(self, seq: int) -> bool:
        last = self._repaired.get(seq)
        return last is None or (self.sim.now - last) > self.rtt.rtt

    def _eack_repair(self, budget: int) -> None:
        """Repair up to ``budget`` holes the EACK information proves lost.

        A sequence number counts as lost once three higher sequence numbers
        have been selectively acknowledged (the standard SACK reordering
        guard).  Repairs are paced -- a small budget per ACK event -- so a
        burst repair does not re-flood the congested queue, and each hole is
        repaired at most once per recovery episode (the RTO is the backstop
        for repairs that are lost again).
        """
        if not self._sacked or budget <= 0:
            return
        ordered = sorted(self._sacked)
        if len(ordered) < self.dup_ack_threshold:
            return
        threshold = ordered[-self.dup_ack_threshold]
        for seq in range(self.snd_una, threshold + 1):
            if budget <= 0:
                break
            if seq in self._sacked or not self._repair_eligible(seq):
                continue
            entry = self._window.get(seq)
            if entry is None:
                continue
            self._repaired[seq] = self.sim.now
            self._retransmit(seq, timeout=False)
            budget -= 1

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def _arm_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None
        if self.inflight > 0:
            rto = self.rtt.rto
            if self.rto_jitter:
                # Deterministic decorrelation: seeded stream, so identical
                # configs still produce identical schedules/traces.
                rto *= 1.0 + self.rto_jitter * self._rto_rng.random()
            self._rto_event = self.sim.schedule(rto, self._on_rto)

    def _on_rto(self) -> None:
        self._rto_event = None
        if self.inflight == 0:
            return
        self.rtt.backoff()
        self.cc.on_timeout(self.inflight)
        fl = self.flight
        if fl is not None:
            fl.note("transport", "RTO", flow=self.flow_id,
                    head=self.snd_una, rto=self.rtt.rto,
                    inflight=self.inflight)
        self._in_recovery = False
        self._dup_acks = 0
        self._repaired.clear()
        if self.stall_threshold:
            self._consec_timeouts += 1
            if (not self._stalled
                    and self._consec_timeouts >= self.stall_threshold):
                self._stalled = True
                self.stats.stalls += 1
                if fl is not None:
                    fl.note("transport", "STALL", flow=self.flow_id,
                            consec_timeouts=self._consec_timeouts)
                self.coordinator.on_stall(self.sim.now)
        self._retransmit(self.snd_una, timeout=True)
        self._arm_rto()

    def _epoch_len(self) -> float:
        floor = getattr(self.cc, "min_epoch_s", 0.01)
        return max(self.rtt.rtt, floor)

    def _epoch_tick(self) -> None:
        if self._completed:
            return
        # Window validation: an application-limited epoch (the window never
        # came close to full) must not grow the window, or an idle flow
        # rails its cwnd to the maximum and later dumps a huge burst.
        app_limited = (self._epoch_lost == 0
                       and self._epoch_max_inflight
                       < 0.75 * self.window_limit)
        if not app_limited:
            self.cc.on_epoch(self._epoch_sent, self._epoch_lost,
                             self.rtt.rtt)
        self._epoch_sent = 0
        self._epoch_lost = 0
        self._epoch_max_inflight = 0
        self._pump()
        self.sim.schedule(self._epoch_len(), self._epoch_tick)

    #: Minimum packets sent in a period for its error ratio to drive
    #: application callbacks; a near-idle period's ratio (e.g. 2 lost of 2
    #: sent = 100%) is statistically meaningless and would trigger wild
    #: adaptations.
    MIN_PERIOD_SAMPLES = 8

    def _metric_tick(self) -> None:
        if self._completed:
            return
        pm = self.metrics.roll(self.sim.now, self.rtt.rtt, self.cc.cwnd,
                               blackout=self._stalled)
        if pm.sent >= self.MIN_PERIOD_SAMPLES and not pm.blackout:
            tr = self.trace
            on_fire = None
            if tr.enabled:
                flow = self.flow_id

                def on_fire(kind, out, _tr=tr, _flow=flow,
                            _eratio=pm.error_ratio):
                    _tr.emit("transport", CALLBACK_FIRED, flow=_flow,
                             kind=kind, error_ratio=_eratio,
                             returned_attrs=out is not None)

            results = self.callbacks.evaluate(pm.error_ratio, pm.as_dict(),
                                              on_fire)
            for attrs in results:
                tr = self.trace
                if tr.enabled:
                    tr.emit("transport", ATTR_SENT, flow=self.flow_id,
                            via="callback", attrs=attrs.as_dict())
                self.coordinator.on_callback_result(attrs)
        self.coordinator.on_period(pm)
        self._pump()
        self.sim.schedule(self.metrics.period, self._metric_tick)

    # ------------------------------------------------------------------
    def _check_complete(self) -> None:
        if (self._finished and not self._completed and not self._pending
                and self.snd_una == self.snd_nxt):
            self._completed = True
            fl = self.flight
            if fl is not None:
                fl.note("transport", "COMPLETE", flow=self.flow_id,
                        acked=self.stats.acked_packets,
                        skips=self.stats.skips_sent)
            if self._rto_event is not None:
                self._rto_event.cancel()
                self._rto_event = None
            if self.on_complete is not None:
                self.on_complete(self.sim.now)

    @property
    def completed(self) -> bool:
        return self._completed

    def invariant_violations(self) -> list[str]:
        """Structural sanity of the send state (see :mod:`repro.invariants`).

        Counter reads only -- never mutates, so checks cannot perturb the
        run they verify.  Returns descriptions of every violated invariant
        (empty when sane).
        """
        bad: list[str] = []
        if not (0 <= self.snd_una <= self.snd_nxt):
            bad.append(f"sequence order: 0 <= snd_una={self.snd_una} "
                       f"<= snd_nxt={self.snd_nxt} fails")
        if self.inflight != len(self._window):
            bad.append(f"inflight accounting: snd_nxt - snd_una = "
                       f"{self.inflight} but window holds "
                       f"{len(self._window)} packets")
        if self.backlog_bytes < 0:
            bad.append(f"backlog bytes negative ({self.backlog_bytes})")
        if self._completed and (self._pending or self.snd_una != self.snd_nxt):
            bad.append(f"completed with work outstanding: "
                       f"pending={len(self._pending)} "
                       f"unacked={self.inflight}")
        cc_bad = self.cc.bounds_violation()
        if cc_bad is not None:
            bad.append(cc_bad)
        fx = self.fec_tx
        if fx is not None:
            state = fx.state
            if state.data_enrolled != self.snd_nxt:
                bad.append(f"fec enrollment: {state.data_enrolled} segments "
                           f"coded over but {self.snd_nxt} first "
                           f"transmissions occurred")
            state_bad = state.conservation_violation()
            if state_bad is not None:
                bad.append(state_bad)
        return bad


class WindowedReceiver:
    """In-order receiver with cumulative ACKs and skip handling.

    ``on_deliver(pkt, time)`` fires for each in-order data packet; skip
    segments advance the sequence space without a delivery (the adaptive
    reliability path).
    """

    #: Out-of-sequence seqs advertised per EACK (bounds ACK "size" growth;
    #: the wire charge stays ACK_BYTES -- a real EACK packs ranges).
    EACK_LIMIT = 256

    #: Span recorder hook, same class-attribute idiom as the sender's.
    spans = None

    #: FEC decoder (:class:`repro.transport.fec.FecReceiver`) armed by the
    #: connection alongside the sender's coder; the disarmed receive path
    #: pays one ``pkt.fec is None`` slot read per data packet.
    fec = None

    def __init__(self, sim: Simulator, host: Host, *, port: int,
                 peer_addr: int, peer_port: int, flow_id: int,
                 on_deliver: Callable[[Packet, float], None] | None = None,
                 use_eack: bool = False):
        self.sim = sim
        self.host = host
        self.port = port
        self.peer_addr = peer_addr
        self.peer_port = peer_port
        self.flow_id = flow_id
        self.on_deliver = on_deliver
        self.use_eack = use_eack
        self.reorder = ReorderBuffer()
        self.stats = FlowStats()
        # Flight recorder reference for the FEC decoder's cold-path notes;
        # the ordinary receive path never touches it.
        self.flight = getattr(sim, "flight", None)
        host.bind(port, self)

    # ------------------------------------------------------------------
    def receive(self, pkt: Packet) -> None:
        if pkt.flow_id != self.flow_id or pkt.kind != PacketKind.DATA:
            return
        if pkt.fec is not None:
            # Repair segments live outside the sequence space: decode (or
            # drop, if the tier is not armed on this side) and stop.
            fx = self.fec
            if fx is not None:
                fx.on_repair(pkt)
            return
        verdict = self.reorder.offer(pkt.seq, pkt)
        if verdict == "inorder":
            self._consume(pkt)
            self.reorder.advance()
            for _seq, buffered in self.reorder.drain():
                self._consume(buffered)  # type: ignore[arg-type]
        elif verdict == "dup":
            self.stats.duplicates += 1
        if verdict != "dup":
            fx = self.fec
            if fx is not None:
                # A new arrival may leave a held stripe one member short
                # of recovery (compound ARQ+FEC repair).
                fx.on_progress()
        self._send_ack()

    def _consume(self, pkt: Packet) -> None:
        sp = self.spans
        if pkt.skip:
            self.stats.skipped_received += 1
            if sp is not None:
                sp.on_skip(pkt)
            return
        self.stats.delivered_packets += 1
        self.stats.delivered_bytes += pkt.size
        if sp is not None:
            sp.on_deliver(pkt)
        if self.on_deliver is not None:
            self.on_deliver(pkt, self.sim.now)

    def _send_ack(self) -> None:
        ack = Packet(flow_id=self.flow_id, kind=PacketKind.ACK,
                     ack=self.reorder.rcv_nxt, size=0,
                     src=self.host.address, dst=self.peer_addr,
                     sport=self.port, dport=self.peer_port,
                     created_at=self.sim.now)
        if self.use_eack and len(self.reorder):
            # RUDP's EACK: advertise out-of-sequence arrivals so the sender
            # can repair burst losses in one round trip (draft-ietf-sigtran-
            # reliable-udp, EACK segment).  TCP Reno runs without it.
            ack.sack = tuple(self.reorder.buffered_seqs()[:self.EACK_LIMIT])
        self.host.send(ack)

    def invariant_violations(self) -> list[str]:
        """Receive-side sanity (see :mod:`repro.invariants`): the reorder
        buffer may only hold sequence numbers above the cumulative ACK
        point.  Counter reads only; returns descriptions (empty = sane)."""
        bad: list[str] = []
        rcv_nxt = self.reorder.rcv_nxt
        if rcv_nxt < 0:
            bad.append(f"rcv_nxt negative ({rcv_nxt})")
        if len(self.reorder):
            low = self.reorder.buffered_seqs()[0]
            if low <= rcv_nxt:
                bad.append(f"reorder buffer holds seq {low} at or below "
                           f"rcv_nxt={rcv_nxt}")
        return bad
