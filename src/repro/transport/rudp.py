"""RUDP: reliable UDP with LDA-style congestion control and adaptive
reliability, *without* coordination.

Paper terminology (end of section 2.1): "the term RUDP is used to denote the
basic reliable and adaptive transport functionality of IQ-RUDP, whereas the
term IQ-RUDP refers to the coordination schemes".  This module is that
baseline: the transport exports metrics and fires application callbacks, but
ignores whatever the application says about its own adaptation (the
:class:`~repro.core.coordination.NullCoordinator`).
"""

from __future__ import annotations

from typing import Callable

from ..core.attributes import AttributeService
from ..core.callbacks import CallbackRegistry, ThresholdCallback
from ..core.coordination import Coordinator, NullCoordinator
from ..sim.engine import Simulator
from ..sim.node import Host
from ..sim.packet import Packet
from .base import WindowedReceiver, WindowedSender, make_flow_id
from .cc import CongestionControl
from .fec import FecConfig, FecReceiver, FecSender, FecState
from .lda import LdaCC
from .reliability import (FullReliability, LossTolerantReliability,
                          ReliabilityPolicy)

__all__ = ["RudpConnection"]


class RudpConnection:
    """A one-directional RUDP flow.

    Parameters of note
    ------------------
    loss_tolerance : receiver loss tolerance in [0, 1]; ``None`` keeps full
        reliability (no skips).
    cc : override the congestion law (e.g. ``FixedWindowCC`` for Table 1's
        CC-disabled row); default LDA.
    coordinator : plug in :class:`~repro.core.coordination.IQCoordinator`
        to turn this into IQ-RUDP (used by :mod:`repro.transport.iq_rudp`).
    fec : a :class:`~repro.transport.fec.FecConfig` arms the block/
        interleaved XOR repair tier on both endpoints (``None``, the
        default, leaves every code path bit-identical to pre-FEC RUDP).
    """

    def __init__(self, sim: Simulator, sender_host: Host, receiver_host: Host,
                 *, port: int = 6001, mss: int = 1400, rwnd: int = 128,
                 metric_period: float = 0.5,
                 loss_tolerance: float | None = None,
                 cc: CongestionControl | None = None,
                 coordinator: Coordinator | None = None,
                 on_deliver: Callable[[Packet, float], None] | None = None,
                 on_complete: Callable[[float], None] | None = None,
                 on_space: Callable[[], None] | None = None,
                 rto_jitter: float = 0.0, rto_rng=None,
                 stall_threshold: int = 0,
                 fec: FecConfig | None = None):
        flow_id = make_flow_id(sim)
        self.service = AttributeService()
        self.callbacks = CallbackRegistry()
        reliability: ReliabilityPolicy
        if loss_tolerance is None:
            reliability = FullReliability()
        else:
            reliability = LossTolerantReliability(loss_tolerance)
        self.receiver = WindowedReceiver(
            sim, receiver_host, port=port, peer_addr=sender_host.address,
            peer_port=port, flow_id=flow_id, on_deliver=on_deliver,
            use_eack=True)
        self.sender = WindowedSender(
            sim, sender_host, port=port, peer_addr=receiver_host.address,
            peer_port=port, cc=cc if cc is not None else LdaCC(),
            mss=mss, reliability=reliability,
            coordinator=coordinator or NullCoordinator(),
            callbacks=self.callbacks, service=self.service,
            metric_period=metric_period, rwnd=rwnd, flow_id=flow_id,
            use_eack=True, on_complete=on_complete, on_space=on_space,
            rto_jitter=rto_jitter, rto_rng=rto_rng,
            stall_threshold=stall_threshold)
        self.fec: FecState | None = None
        if fec is not None:
            fec = FecConfig.parse(fec)
            state = FecState(fec)
            self.fec = state
            self.sender.fec_tx = FecSender(self.sender, state)
            self.receiver.fec = FecReceiver(self.receiver, state)
            # ARQ runs completely unchanged alongside the repair tier
            # (fast retransmit included): when the flow is fast enough
            # for FEC to matter, a generation completes well inside one
            # RTT and the repair wins the race anyway; when it is not,
            # impeding ARQ to favour a repair that cannot help would
            # turn every miss into an RTO stall.

    # ------------------------------------------------------------------
    # Application-facing API (paper section 2.1's three mechanisms)
    # ------------------------------------------------------------------
    def query_metric(self, name: str, default=None):
        """Mechanism (1): query exported network performance metrics."""
        return self.service.query(name, default)

    def register_callbacks(self, *, upper: float, lower: float,
                           on_upper: ThresholdCallback | None = None,
                           on_lower: ThresholdCallback | None = None,
                           edge_triggered: bool = False) -> None:
        """Mechanism (2): register error-ratio threshold callbacks."""
        self.callbacks.register(upper=upper, lower=lower, on_upper=on_upper,
                                on_lower=on_lower,
                                edge_triggered=edge_triggered)

    def submit(self, size: int, **kw) -> int:
        """Mechanism (3) rides on ``marked=``; attributes ride on ``attrs=``
        (this is ``cmwritev_attr``)."""
        return self.sender.submit(size, **kw)

    def finish(self) -> None:
        self.sender.finish()

    @property
    def completed(self) -> bool:
        return self.sender.completed

    @property
    def trace(self):
        """The trace bus this flow publishes to (``NULL_BUS`` unless the
        owning simulator was given an enabled ``repro.obs`` bus)."""
        return self.sender.trace
