"""IQ-RUDP: RUDP plus the coordination schemes -- the paper's protocol.

The only structural difference from :class:`~repro.transport.rudp.
RudpConnection` is the coordinator: IQ-RUDP listens to the application's
adaptation attributes (callback return values and ``cmwritev_attr``
parameters) and re-adapts its own behaviour -- discarding unmarked datagrams
(conflict scheme), re-inflating its window after resolution adaptations
(over-reaction scheme), and correcting for obsolete network information via
``ADAPT_COND`` (granularity scheme).
"""

from __future__ import annotations

from ..core.coordination import IQCoordinator
from .rudp import RudpConnection

__all__ = ["IqRudpConnection"]


class IqRudpConnection(RudpConnection):
    """RUDP with a bound :class:`~repro.core.coordination.IQCoordinator`.

    The three ``enable_*`` switches expose the paper's ablations: Table 8's
    "IQ-RUDP w/o ADAPT_COND" is ``use_adapt_cond=False``; setting all three
    False degenerates to plain RUDP (tested as an invariant).

    When the simulator carries an enabled :class:`repro.obs.TraceBus`, the
    coordinator emits ``ATTR_RECEIVED``/``COORD_ACTION`` events for every
    exchange, which is what ``repro report``'s coordination audit pairs up.

    With a ``fec=`` config (inherited from :class:`RudpConnection`) the
    coordinator additionally owns the repair redundancy: it honours
    ``ADAPT_FEC`` quality attributes from the application, raises ``r``
    from per-period loss telemetry and around stalls, and sheds it once
    the loss estimator clears -- coordinated FEC, versus plain RUDP's
    statically-configured coding rate.
    """

    def __init__(self, *args, discard_unmarked: bool = True,
                 reinflate_window: bool = True, use_adapt_cond: bool = True,
                 **kw):
        coordinator = IQCoordinator(discard_unmarked=discard_unmarked,
                                    reinflate_window=reinflate_window,
                                    use_adapt_cond=use_adapt_cond)
        super().__init__(*args, coordinator=coordinator, **kw)
        self.coordinator = coordinator
