"""TCP (Reno) endpoints -- the paper's baseline transport.

Built from the shared windowed machinery with Reno congestion control and
full reliability.  Used standalone in Tables 1/2 and as the competing
cross-flow in the fairness test.
"""

from __future__ import annotations

from typing import Callable

from ..core.attributes import AttributeService
from ..sim.engine import Simulator
from ..sim.node import Host
from ..sim.packet import Packet
from .base import WindowedReceiver, WindowedSender, make_flow_id
from .cc import RenoCC
from .reliability import FullReliability

__all__ = ["TcpConnection"]


class TcpConnection:
    """A one-directional TCP flow between two hosts of a topology.

    The paper's applications are one-way bulk/stream senders; the reverse
    path carries only ACKs, so a single sender/receiver pair models the
    connection.
    """

    def __init__(self, sim: Simulator, sender_host: Host, receiver_host: Host,
                 *, port: int = 5001, mss: int = 1400, rwnd: int = 128,
                 metric_period: float = 0.5,
                 on_deliver: Callable[[Packet, float], None] | None = None,
                 on_complete: Callable[[float], None] | None = None,
                 on_space: Callable[[], None] | None = None,
                 initial_ssthresh: float = 64.0,
                 rto_jitter: float = 0.0, rto_rng=None,
                 stall_threshold: int = 0):
        flow_id = make_flow_id(sim)
        self.service = AttributeService()
        self.receiver = WindowedReceiver(
            sim, receiver_host, port=port, peer_addr=sender_host.address,
            peer_port=port, flow_id=flow_id, on_deliver=on_deliver)
        self.sender = WindowedSender(
            sim, sender_host, port=port, peer_addr=receiver_host.address,
            peer_port=port, cc=RenoCC(initial_ssthresh=initial_ssthresh),
            mss=mss, reliability=FullReliability(), service=self.service,
            metric_period=metric_period, rwnd=rwnd, flow_id=flow_id,
            on_complete=on_complete, on_space=on_space,
            rto_jitter=rto_jitter, rto_rng=rto_rng,
            stall_threshold=stall_threshold)

    # Convenience passthroughs -------------------------------------------------
    def submit(self, size: int, **kw) -> int:
        return self.sender.submit(size, **kw)

    def finish(self) -> None:
        self.sender.finish()

    @property
    def completed(self) -> bool:
        return self.sender.completed
