"""Adaptive reliability policies (paper section 2.1, mechanism (3)).

IQ-RUDP supports *both* "receiver loss tolerance and sender packet priority
marking".  The sender marks each datagram (``marked=True`` requires
delivery); when an unmarked datagram is detected lost, the sender may *skip*
it -- transmit a zero-payload hole-fill segment so the receiver's cumulative
sequence advances -- instead of retransmitting the payload, provided the
receiver's registered loss tolerance is not exceeded.

The tolerance is registered by the receiver as connection state (the
:data:`~repro.core.attributes.RELIABILITY_TOLERANCE` attribute); enforcement
happens at the sender, which tracks exactly what has been skipped versus
delivered.  This is behaviourally identical to receiver-side enforcement in
a simulator (both ends share fate deterministically) and saves a control
round trip, matching the paper's library implementation where both ends are
instrumented.
"""

from __future__ import annotations

from ..sim.packet import Packet

__all__ = ["ReliabilityPolicy", "FullReliability", "LossTolerantReliability"]


class ReliabilityPolicy:
    """Decides whether a lost packet may be skipped instead of resent."""

    def allow_skip(self, pkt: Packet, skipped: int, completed: int) -> bool:
        """May the sender skip this lost packet?

        ``skipped``/``completed`` are lifetime counts of skipped and
        successfully acknowledged data packets on the connection.
        """
        raise NotImplementedError


class FullReliability(ReliabilityPolicy):
    """TCP semantics: every loss is retransmitted."""

    def allow_skip(self, pkt: Packet, skipped: int, completed: int) -> bool:
        return False


class LossTolerantReliability(ReliabilityPolicy):
    """Skip unmarked losses while total skips stay within ``tolerance``.

    Section 3.3 sets the receiver loss tolerance to 40%: at most 40% of the
    connection's data packets may be withheld.  Marked (and tagged) packets
    are always retransmitted.
    """

    def __init__(self, tolerance: float):
        if not 0.0 <= tolerance <= 1.0:
            raise ValueError("tolerance must be in [0,1]")
        self.tolerance = tolerance

    def allow_skip(self, pkt: Packet, skipped: int, completed: int) -> bool:
        if pkt.marked or pkt.tagged:
            return False
        total = skipped + completed + 1
        return (skipped + 1) / total <= self.tolerance
