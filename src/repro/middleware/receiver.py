"""Receiver-side delivery log and metric extraction.

Records every in-order delivery the transport hands up and converts to
NumPy arrays once, at analysis time (vectorise at the edge).  All of the
paper's receiver metrics come from here:

* duration / throughput (Tables 1-8),
* packet and message inter-arrival means and jitters (std deviations),
* tagged-message delay/jitter (Tables 3-4),
* per-packet jitter series (Figures 2-3),
* percentage of messages delivered (Tables 3-4).
"""

from __future__ import annotations

import numpy as np

from ..sim.packet import Packet

__all__ = ["DeliveryLog"]


class DeliveryLog:
    """Append-only log of delivered packets; wire as ``on_deliver``."""

    def __init__(self) -> None:
        self._t: list[float] = []
        self._size: list[int] = []
        self._tagged: list[bool] = []
        self._frame: list[int] = []
        self._last: list[bool] = []
        self._created: list[float] = []
        self.first_time: float | None = None
        self.last_time: float | None = None

    # ------------------------------------------------------------------
    def on_deliver(self, pkt: Packet, now: float) -> None:
        self._t.append(now)
        self._size.append(pkt.size)
        self._tagged.append(pkt.tagged)
        self._frame.append(pkt.frame_id)
        self._last.append(pkt.last_of_frame)
        self._created.append(pkt.created_at)
        if self.first_time is None:
            self.first_time = now
        self.last_time = now

    def __len__(self) -> int:
        return len(self._t)

    # ------------------------------------------------------------------
    # Array views
    # ------------------------------------------------------------------
    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._t, dtype=np.float64)

    @property
    def sizes(self) -> np.ndarray:
        return np.asarray(self._size, dtype=np.int64)

    @property
    def tagged(self) -> np.ndarray:
        return np.asarray(self._tagged, dtype=bool)

    @property
    def frame_ids(self) -> np.ndarray:
        return np.asarray(self._frame, dtype=np.int64)

    @property
    def created(self) -> np.ndarray:
        return np.asarray(self._created, dtype=np.float64)

    # ------------------------------------------------------------------
    # Derived series
    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return int(sum(self._size))

    @property
    def duration(self) -> float:
        """Time from simulation start to the last delivery."""
        return self.last_time if self.last_time is not None else 0.0

    def message_times(self) -> np.ndarray:
        """Completion times of full application messages (frames): the
        arrival of each frame's last segment."""
        last = np.asarray(self._last, dtype=bool)
        return self.times[last]

    def frames_delivered(self) -> int:
        """Distinct application frames with at least one delivered segment.

        This is the *delivered-frame* count the dynamics sweeps build
        goodput from: a frame whose droppable (unmarked) segments were
        deliberately shed still reached the receiver in degraded form and
        counts, whereas :meth:`message_times` counts one entry per
        *submitted message* -- per datagram under per-datagram marking --
        and would score an intentional quality adaptation as lost goodput.
        """
        ids = self.frame_ids
        ids = ids[ids >= 0]
        return int(np.unique(ids).size)

    def tagged_times(self) -> np.ndarray:
        return self.times[self.tagged]

    def interarrivals(self, times: np.ndarray | None = None) -> np.ndarray:
        t = self.times if times is None else times
        return np.diff(t) if t.size > 1 else np.empty(0)

    def one_way_delays(self) -> np.ndarray:
        """Source-submit to delivery latency per packet (includes transport
        queueing -- the end-to-end delay the end user experiences)."""
        return self.times - self.created

    def jitter_series(self) -> np.ndarray:
        """|deviation of inter-arrival from its running mean| per packet --
        the per-packet jitter plotted in Figures 2 and 3."""
        ia = self.interarrivals()
        if ia.size == 0:
            return ia
        means = np.cumsum(ia) / np.arange(1, ia.size + 1)
        return np.abs(ia - means)

    # ------------------------------------------------------------------
    def consistency_violation(self, start: int = 0) -> str | None:
        """Frame-accounting sanity from index ``start`` (incremental, so a
        periodic checker never rescans the whole log).  The parallel lists
        must stay aligned, delivery times must be non-decreasing and never
        precede the packet's creation, and every delivered payload is
        non-empty (skip segments are consumed before they reach the log).
        Returns a description, or None when consistent."""
        n = len(self._t)
        for name in ("_size", "_tagged", "_frame", "_last", "_created"):
            m = len(getattr(self, name))
            if m != n:
                return f"log misaligned: {name} has {m} rows, times has {n}"
        prev = self._t[start - 1] if start > 0 else float("-inf")
        for i in range(start, n):
            t = self._t[i]
            if t < prev:
                return (f"delivery times regress at index {i}: "
                        f"{t!r} < {prev!r}")
            if t < self._created[i]:
                return (f"delivery at index {i} precedes creation: "
                        f"t={t!r} created={self._created[i]!r}")
            if self._size[i] <= 0:
                return (f"non-positive delivered size {self._size[i]} "
                        f"at index {i}")
            prev = t
        return None
