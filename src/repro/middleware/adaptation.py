"""Application-level adaptation strategies (the paper's three algorithms).

Each strategy owns the application-side adaptation state machine, registers
the error-ratio threshold callbacks on the connection, and describes its
adaptations as quality attributes.  Whether the transport *uses* those
attributes is decided by the connection's coordinator -- plain RUDP ignores
them ("the call-back returns void" behaviour), IQ-RUDP acts on them -- so
the identical application code runs in coordinated and uncoordinated
experiments, exactly as in the paper.

The three algorithms, verbatim from the evaluation section:

* :class:`MarkingAdaptation` (section 3.3): above 30% loss, "there is a
  tagged packet every five packets; for all other packets, there is a
  probability of max(40, (5/4)*eratio) [percent] of being unmarked"; each
  lower-threshold callback (5%) reduces the unmarking probability by 20%.
* :class:`ResolutionAdaptation` (section 3.4): above 15% loss, "instantly
  reduces packet size by a percentage equal to the error ratio"; at/below
  1% loss, "increases packet size by 10%".
* :class:`DelayedResolutionAdaptation` (section 3.5): same control law, but
  the change "can only start ... at the next application frame with a
  sequence number divisible by 20"; the callback immediately reports
  ``ADAPT_WHEN="pending"`` and the executed change is piggybacked, with
  ``ADAPT_COND``, on the boundary frame's send call.
* :class:`FrequencyAdaptation` (extension; described in section 2.3.2 but
  not evaluated): trades frame *rate* instead of frame *size*; coordination
  deliberately performs no window change for it.
"""

from __future__ import annotations

import random

from ..core.attributes import (ADAPT_COND, ADAPT_FEC, ADAPT_FREQ, ADAPT_MARK,
                               ADAPT_PKTSIZE, ADAPT_WHEN, AttributeSet)
from ..obs.bus import NULL_BUS
from ..obs.events import ADAPT_ACTION

__all__ = ["AdaptationStrategy", "NullAdaptation", "MarkingAdaptation",
           "ResolutionAdaptation", "DelayedResolutionAdaptation",
           "FrequencyAdaptation", "FecAdaptation"]


class AdaptationStrategy:
    """Base class; a strategy plugs into an :class:`~repro.middleware.
    application.AdaptiveSource`.

    Attributes
    ----------
    scale : current resolution scale in (0, 1]; the source multiplies frame
        sizes by it.
    freq_scale : current frequency scale in (0, 1]; the source divides its
        frame rate by it... strictly, multiplies the inter-frame interval by
        ``1/freq_scale``.
    per_datagram_marking : when True the source splits frames into
        MSS datagrams and asks :meth:`datagram_flags` for each.
    """

    per_datagram_marking = False
    upper = 0.15
    lower = 0.01

    def __init__(self) -> None:
        self.scale = 1.0
        self.freq_scale = 1.0
        self.upper_events = 0
        self.lower_events = 0
        self.trace = NULL_BUS
        self._flow = -1

    def bind(self, conn, rng: random.Random) -> None:
        """Register threshold callbacks on ``conn`` (a Rudp/IqRudp
        connection).  TCP connections have no callback registry; binding a
        strategy to one is an error the experiments guard against."""
        self._rng = rng
        self._bind_trace(conn)
        conn.register_callbacks(upper=self.upper, lower=self.lower,
                                on_upper=self._on_upper,
                                on_lower=self._on_lower)

    def _bind_trace(self, conn) -> None:
        sender = getattr(conn, "sender", None)
        if sender is not None:
            self.trace = sender.sim.bus
            self._flow = sender.flow_id

    # -- hooks ------------------------------------------------------------
    def _trace_action(self, trigger: str, eratio: float,
                      attrs: AttributeSet | None) -> None:
        tr = self.trace
        if tr.enabled and attrs is not None:
            tr.emit("app", ADAPT_ACTION, flow=self._flow, trigger=trigger,
                    error_ratio=eratio, scale=self.scale,
                    freq_scale=self.freq_scale, attrs=attrs.as_dict())

    def _on_upper(self, eratio: float, metrics: dict) -> AttributeSet | None:
        self.upper_events += 1
        out = self.on_upper(eratio, metrics)
        self._trace_action("upper", eratio, out)
        return out

    def _on_lower(self, eratio: float, metrics: dict) -> AttributeSet | None:
        self.lower_events += 1
        out = self.on_lower(eratio, metrics)
        self._trace_action("lower", eratio, out)
        return out

    def on_upper(self, eratio: float, metrics: dict) -> AttributeSet | None:
        return None

    def on_lower(self, eratio: float, metrics: dict) -> AttributeSet | None:
        return None

    def frame_attrs(self, index: int) -> AttributeSet | None:
        """Attributes to piggyback on frame ``index``'s send call (the
        delayed-adaptation path).  Called once per frame."""
        return None

    def datagram_flags(self, counter: int) -> tuple[bool, bool]:
        """(marked, tagged) for datagram number ``counter``."""
        return True, False


class NullAdaptation(AdaptationStrategy):
    """No application adaptation (Table 1's TCP / IQ-RUDP-alone rows)."""

    def bind(self, conn, rng: random.Random) -> None:
        self._rng = rng  # registers nothing
        self._bind_trace(conn)


class MarkingAdaptation(AdaptationStrategy):
    """Reliability adaptation: unmark droppable packets under congestion.

    ``floor`` is the paper's 40% minimum unmarking probability; ``tag_every``
    the 1-in-5 control-information tagging.
    """

    per_datagram_marking = True
    upper = 0.30
    lower = 0.05

    def __init__(self, *, floor: float = 0.40, slope: float = 1.25,
                 tag_every: int = 5, backoff: float = 0.20,
                 max_unmark: float = 0.95,
                 upper: float = 0.30, lower: float = 0.05):
        super().__init__()
        if tag_every < 1:
            raise ValueError("tag_every must be >= 1")
        self.upper = upper
        self.lower = lower
        self.floor = floor
        self.slope = slope
        self.tag_every = tag_every
        self.backoff = backoff
        self.max_unmark = max_unmark
        self.unmark_p = 0.0

    def on_upper(self, eratio: float, metrics: dict) -> AttributeSet:
        self.unmark_p = min(max(self.floor, self.slope * eratio),
                            self.max_unmark)
        return AttributeSet({ADAPT_MARK: self.unmark_p, ADAPT_WHEN: "now"})

    def on_lower(self, eratio: float, metrics: dict) -> AttributeSet | None:
        if self.unmark_p == 0.0:
            return None
        self.unmark_p *= (1.0 - self.backoff)
        if self.unmark_p < 0.02:
            self.unmark_p = 0.0
        return AttributeSet({ADAPT_MARK: self.unmark_p, ADAPT_WHEN: "now"})

    def datagram_flags(self, counter: int) -> tuple[bool, bool]:
        if counter % self.tag_every == 0:
            return True, True  # control information: marked and tagged
        if self.unmark_p and self._rng.random() < self.unmark_p:
            return False, False
        return True, False


class ResolutionAdaptation(AdaptationStrategy):
    """Down-sampling: trade data resolution for timeliness (section 3.4)."""

    upper = 0.15
    lower = 0.01

    def __init__(self, *, increase: float = 0.10, min_scale: float = 0.1,
                 upper: float = 0.15, lower: float = 0.01,
                 cooldown_s: float = 2.0):
        super().__init__()
        if not 0 < min_scale <= 1:
            raise ValueError("min_scale must be in (0,1]")
        self.increase = increase
        self.min_scale = min_scale
        self.upper = upper
        self.lower = lower
        # One resolution cut per congestion episode: a loss burst spans
        # several measurement periods, and cutting (plus, under IQ-RUDP,
        # re-inflating the window) once per period would compound far past
        # the transport's own once-per-window reduction cadence.
        self.cooldown_s = cooldown_s
        self._next_cut_time = 0.0

    def _change_scale(self, new_scale: float, eratio: float, rate: float
                      ) -> AttributeSet | None:
        # At most halve per event: a measuring period where everything was
        # lost reads 100% and would otherwise zero the resolution outright.
        new_scale = min(max(new_scale, self.scale * 0.5, self.min_scale), 1.0)
        if new_scale == self.scale:
            return None
        rate_chg = 1.0 - new_scale / self.scale  # fractional size reduction
        self.scale = new_scale
        return AttributeSet({
            ADAPT_PKTSIZE: rate_chg,
            ADAPT_WHEN: "now",
            ADAPT_COND: {"error_ratio": eratio, "rate": rate},
        })

    def on_upper(self, eratio: float, metrics: dict) -> AttributeSet | None:
        now = metrics.get("time", 0.0)
        if now < self._next_cut_time:
            return None
        self._next_cut_time = now + self.cooldown_s
        return self._change_scale(self.scale * (1.0 - eratio), eratio,
                                  metrics.get("rate_bps", 0.0))

    def on_lower(self, eratio: float, metrics: dict) -> AttributeSet | None:
        return self._change_scale(self.scale * (1.0 + self.increase), eratio,
                                  metrics.get("rate_bps", 0.0))


class DelayedResolutionAdaptation(ResolutionAdaptation):
    """Resolution adaptation deferred to coarse frame boundaries
    (section 3.5's limited-granularity application).

    The threshold callback only *decides*; the decision is applied -- and
    its attributes piggybacked via ``cmwritev_attr`` -- at the next frame
    whose index is divisible by ``boundary``.
    """

    def __init__(self, *, boundary: int = 20, **kw):
        super().__init__(**kw)
        if boundary < 1:
            raise ValueError("boundary must be >= 1")
        self.boundary = boundary
        self._pending: tuple[float, float, float] | None = None
        self.applied_adaptations = 0

    def on_upper(self, eratio: float, metrics: dict) -> AttributeSet | None:
        # Decide once, apply at the boundary.  The decision deliberately
        # sticks: this application "does not want to be frequently
        # interrupted for adaptation" (section 2.3.1), so it prepares one
        # adaptation and executes it when it can -- by which time the
        # network may have drifted, which is exactly what ADAPT_COND lets
        # the transport correct for.
        if self._pending is not None:
            return None
        self._pending = (self.scale * (1.0 - eratio), eratio,
                         metrics.get("rate_bps", 0.0))
        return AttributeSet({ADAPT_WHEN: "pending"})

    def on_lower(self, eratio: float, metrics: dict) -> AttributeSet | None:
        if self._pending is not None or self.scale >= 1.0:
            return None
        self._pending = (self.scale * (1.0 + self.increase), eratio,
                         metrics.get("rate_bps", 0.0))
        return AttributeSet({ADAPT_WHEN: "pending"})

    def frame_attrs(self, index: int) -> AttributeSet | None:
        if self._pending is None or index % self.boundary != 0:
            return None
        new_scale, eratio, rate = self._pending
        self._pending = None
        attrs = self._change_scale(new_scale, eratio, rate)
        if attrs is not None:
            self.applied_adaptations += 1
        return attrs


class FrequencyAdaptation(AdaptationStrategy):
    """Frequency adaptation: same bytes per message, sent less often.

    Described in section 2.3.2 ("With a frequency adaptation, the
    application sends the same amount of data as before in each message but
    less frequently"); coordination performs *no* window change for it.
    Implemented as the paper's extension hook and exercised by the ablation
    bench.
    """

    def __init__(self, *, increase: float = 0.10, min_freq: float = 0.1,
                 upper: float = 0.15, lower: float = 0.01):
        super().__init__()
        self.increase = increase
        self.min_freq = min_freq
        self.upper = upper
        self.lower = lower

    def _change(self, new_freq: float) -> AttributeSet | None:
        new_freq = min(max(new_freq, self.min_freq), 1.0)
        if new_freq == self.freq_scale:
            return None
        freq_chg = 1.0 - new_freq / self.freq_scale
        self.freq_scale = new_freq
        return AttributeSet({ADAPT_FREQ: freq_chg, ADAPT_WHEN: "now"})

    def on_upper(self, eratio: float, metrics: dict) -> AttributeSet | None:
        return self._change(self.freq_scale * (1.0 - eratio))

    def on_lower(self, eratio: float, metrics: dict) -> AttributeSet | None:
        return self._change(self.freq_scale * (1.0 + self.increase))


class FecAdaptation(AdaptationStrategy):
    """Coding-rate adaptation: the application owns the redundancy knob.

    The FlEC-style application-tailored reliability loop: under loss the
    application asks the transport for one more repair segment per FEC
    generation (the :data:`~repro.core.attributes.ADAPT_FEC` quality
    attribute), and sheds redundancy again once the network clears.  The
    transport clamps requests to its configured ``[r, r_max]`` band and,
    on connections without a FEC tier, records the request and ignores it
    -- like every other strategy, the identical application code runs
    against coordinated and uncoordinated transports.
    """

    def __init__(self, *, min_r: int = 1, max_r: int = 4,
                 upper: float = 0.05, lower: float = 0.01):
        super().__init__()
        if not 1 <= min_r <= max_r:
            raise ValueError("need 1 <= min_r <= max_r")
        self.min_r = min_r
        self.max_r = max_r
        self.upper = upper
        self.lower = lower
        self.redundancy = min_r
        self.raises = 0
        self.sheds = 0

    def on_upper(self, eratio: float, metrics: dict) -> AttributeSet | None:
        if self.redundancy >= self.max_r:
            return None
        self.redundancy += 1
        self.raises += 1
        return AttributeSet({ADAPT_FEC: self.redundancy, ADAPT_WHEN: "now"})

    def on_lower(self, eratio: float, metrics: dict) -> AttributeSet | None:
        if self.redundancy <= self.min_r:
            return None
        self.redundancy -= 1
        self.sheds += 1
        return AttributeSet({ADAPT_FEC: self.redundancy, ADAPT_WHEN: "now"})


# ---------------------------------------------------------------------------
# Named default-parameter factories.
#
# The CLI and the campaign spec language refer to adaptation strategies by
# name; these module-level factories are the registry targets.  Being real
# module-level functions (not lambdas) they carry a stable
# ``module.qualname`` identity, so configs built from them hash through
# ``repro.runner.hashing.callable_token`` and are served by the persistent
# results cache -- a campaign cell *must* be stably hashable.

def resolution_default() -> ResolutionAdaptation:
    """Resolution adaptation with the repo's default thresholds."""
    return ResolutionAdaptation(upper=0.05, lower=0.005)


def marking_default() -> MarkingAdaptation:
    """Marking adaptation with the repo's default thresholds."""
    return MarkingAdaptation(upper=0.05, lower=0.01)


def delayed_resolution_default() -> DelayedResolutionAdaptation:
    """Delayed resolution adaptation with the repo's default thresholds."""
    return DelayedResolutionAdaptation(boundary=400, upper=0.05, lower=0.005)


def frequency_default() -> FrequencyAdaptation:
    """Frequency adaptation with the repo's default thresholds."""
    return FrequencyAdaptation(upper=0.05, lower=0.005)


def fec_default() -> FecAdaptation:
    """Coding-rate adaptation with the repo's default thresholds."""
    return FecAdaptation(upper=0.05, lower=0.01)


#: Name -> factory registry shared by the CLI (``--adaptation``) and the
#: campaign spec language (``adaptation = "resolution"``).  ``"none"``
#: maps to None: no application adaptation.
ADAPTATIONS: dict = {
    "none": None,
    "resolution": resolution_default,
    "marking": marking_default,
    "delayed": delayed_resolution_default,
    "frequency": frequency_default,
    "fec": fec_default,
}

__all__ += ["ADAPTATIONS", "resolution_default", "marking_default",
            "delayed_resolution_default", "frequency_default", "fec_default"]
