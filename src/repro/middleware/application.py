"""Adaptive application sources (the IQ-ECho data producers).

One class covers the paper's three workload shapes:

* **clocked trace source** (changing-application setting): frames whose
  sizes follow the MBone trace x 3000 B, emitted at a fixed frame rate; the
  transport queues what the network cannot carry, so the run outlasts the
  nominal trace duration under congestion.
* **greedy source** (changing-network setting): fixed-size datagrams "as
  fast as allowed by RUDP", paced purely by transport backpressure.
* **clocked fixed-size source** (Table 8's rate-based application on the
  long-RTT path).

The source owns a workload of ``n_frames`` messages; ``finish()`` semantics
give every experiment a well-defined duration (time until the last message
is delivered, skipped or locally discarded).
"""

from __future__ import annotations

import random
from typing import Sequence

from ..core.attributes import AttributeSet
from ..obs.events import ADAPT_ACTION
from ..sim.engine import Simulator
from .adaptation import AdaptationStrategy, NullAdaptation

__all__ = ["AdaptiveSource"]


class AdaptiveSource:
    """Feeds an adaptive workload into a transport connection.

    Parameters
    ----------
    conn : connection exposing ``submit``/``finish`` (and
        ``register_callbacks`` unless the strategy is Null).
    frame_sizes : per-frame base sizes in bytes (trace mode), or None with
        ``base_frame_size`` set (fixed-size mode).
    frame_rate : frames per second for clocked mode; ``None`` selects greedy
        mode (requires wiring ``on_space=source.pump`` on the sender).
    strategy : the adaptation state machine; scale/marking/frequency changes
        all come from it.
    mss : datagram size used when the strategy marks per datagram.
    frame_deadline_s : per-frame delivery budget; each frame's segments
        carry an absolute deadline of submit-time + this, and the transport
        abandons whatever is still untransmitted once it passes (stale
        media should not block fresher frames).  0.0 (default) disables
        deadline scheduling entirely.
    """

    def __init__(self, sim: Simulator, conn, *,
                 strategy: AdaptationStrategy | None = None,
                 frame_sizes: Sequence[int] | None = None,
                 base_frame_size: int | None = None,
                 n_frames: int | None = None,
                 frame_rate: float | None = None,
                 mss: int = 1400,
                 rng: random.Random | None = None,
                 frame_deadline_s: float = 0.0):
        if frame_sizes is None and base_frame_size is None:
            raise ValueError("need frame_sizes or base_frame_size")
        if frame_sizes is not None and n_frames is None:
            n_frames = len(frame_sizes)
        if n_frames is None or n_frames <= 0:
            raise ValueError("n_frames must be positive")
        if frame_rate is not None and frame_rate <= 0:
            raise ValueError("frame_rate must be positive")
        if frame_deadline_s < 0:
            raise ValueError("frame_deadline_s cannot be negative")
        self.sim = sim
        self.conn = conn
        self.strategy = strategy or NullAdaptation()
        self.frame_sizes = (list(int(s) for s in frame_sizes)
                            if frame_sizes is not None else None)
        self.base_frame_size = base_frame_size
        self.n_frames = n_frames
        self.frame_rate = frame_rate
        self.mss = mss
        self.frame_deadline_s = frame_deadline_s
        self.rng = rng or random.Random(0)
        self.trace = sim.bus
        self.strategy.bind(conn, self.rng)

        self._idx = 0
        self._pumping = False
        self._datagram_counter = 0
        self.submitted_frames = 0
        self.submitted_datagrams = 0
        self.submitted_bytes = 0
        self._started = False
        self._done = False

    # ------------------------------------------------------------------
    def start(self, at: float = 0.0) -> None:
        if self._started:
            raise RuntimeError("source already started")
        self._started = True
        if self.frame_rate is not None:
            self.sim.at(at, self._tick)
        else:
            self.sim.at(at, self.pump)

    @property
    def done(self) -> bool:
        return self._done

    # ------------------------------------------------------------------
    def _frame_size(self, index: int) -> int:
        base = (self.frame_sizes[index % len(self.frame_sizes)]
                if self.frame_sizes is not None else self.base_frame_size)
        return max(int(base * self.strategy.scale), 1)

    def _emit_frame(self, index: int) -> None:
        attrs = self.strategy.frame_attrs(index)
        if attrs is not None:
            # A deferred adaptation executing at this frame boundary.
            tr = self.trace
            if tr.enabled:
                tr.emit("app", ADAPT_ACTION, trigger="frame_boundary",
                        frame=index, applied=True,
                        scale=self.strategy.scale,
                        freq_scale=self.strategy.freq_scale,
                        attrs=attrs.as_dict())
        size = self._frame_size(index)
        # Only mention deadlines to the connection when armed: disarmed
        # sources keep working against any conn exposing the plain
        # ``submit(size, **kw)`` shape (test doubles included).
        ddl = ({"deadline": self.sim.now + self.frame_deadline_s}
               if self.frame_deadline_s > 0 else {})
        if self.strategy.per_datagram_marking:
            self._emit_marked_datagrams(index, size, attrs, ddl)
        else:
            self.conn.submit(size, frame_id=index, attrs=attrs, **ddl)
            self.submitted_datagrams += 1
        self.submitted_frames += 1
        self.submitted_bytes += size

    def _emit_marked_datagrams(self, index: int, size: int,
                               attrs: AttributeSet | None,
                               ddl: dict) -> None:
        """Conflict-experiment shape: the frame is sent as individually
        marked/tagged datagrams of at most one MSS."""
        remaining = size
        first = True
        while remaining > 0:
            seg = min(self.mss, remaining)
            remaining -= seg
            marked, tagged = self.strategy.datagram_flags(
                self._datagram_counter)
            self._datagram_counter += 1
            self.conn.submit(seg, marked=marked, tagged=tagged,
                             frame_id=index, attrs=attrs if first else None,
                             **ddl)
            self.submitted_datagrams += 1
            first = False

    # ------------------------------------------------------------------
    # Clocked mode
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if self._idx >= self.n_frames:
            self._finish()
            return
        self._emit_frame(self._idx)
        self._idx += 1
        if self._idx >= self.n_frames:
            self._finish()
            return
        interval = (1.0 / self.frame_rate) / max(self.strategy.freq_scale,
                                                 1e-9)
        self.sim.schedule(interval, self._tick)

    # ------------------------------------------------------------------
    # Greedy mode (wired as the sender's on_space callback)
    # ------------------------------------------------------------------
    def pump(self) -> None:
        if (not self._started or self._done or self._pumping
                or self.frame_rate is not None):
            return
        # Submitting can re-trigger on_space -> pump; guard against nesting.
        self._pumping = True
        try:
            for _ in range(16):
                if self._idx >= self.n_frames:
                    break
                self._emit_frame(self._idx)
                self._idx += 1
        finally:
            self._pumping = False
        if self._idx >= self.n_frames:
            self._finish()

    def _finish(self) -> None:
        if not self._done:
            self._done = True
            self.conn.finish()
