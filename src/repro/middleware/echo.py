"""IQ-ECho middleware: event channels over IQ-RUDP.

ECho is a publish/subscribe event middleware; IQ-ECho extends it with
quality attributes so applications can coordinate with the IQ-RUDP
transport underneath.  This module is the public-API veneer a downstream
user programs against:

* :class:`EventChannel` -- a typed, one-to-many-ish channel (the paper's
  experiments use one subscriber; fan-out is modelled as parallel channels,
  matching "a content delivery server that uses multiple unicast streams to
  multicast").
* :meth:`EventChannel.cmwritev_attr` -- the paper's send-with-attributes
  entry point ("Attributes are usually carried either as parameters to
  IQ-RUDP's API for sending, CMwritev_attr(), or as an IQ-RUDP connection
  state variable").

Subscribers receive whole application events (frames), assembled from the
in-order segment stream.
"""

from __future__ import annotations

from typing import Callable

from ..core.attributes import AttributeSet
from ..sim.engine import Simulator
from ..sim.packet import Packet

__all__ = ["Event", "EventChannel"]


class Event:
    """A received application event (one frame)."""

    __slots__ = ("frame_id", "size", "submitted_at", "completed_at",
                 "segments", "tagged_segments")

    def __init__(self, frame_id: int, size: int, submitted_at: float,
                 completed_at: float, segments: int, tagged_segments: int):
        self.frame_id = frame_id
        self.size = size
        self.submitted_at = submitted_at
        self.completed_at = completed_at
        self.segments = segments
        self.tagged_segments = tagged_segments

    @property
    def latency(self) -> float:
        return self.completed_at - self.submitted_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Event frame={self.frame_id} {self.size}B "
                f"latency={self.latency*1e3:.1f}ms>")


class EventChannel:
    """Bridges an application to a transport connection.

    Construct with an open connection (Tcp/Rudp/IqRudp) whose receiver-side
    ``on_deliver`` you have pointed at :meth:`on_deliver` (the experiment
    and example builders in :mod:`repro.experiments.common` wire this).
    """

    def __init__(self, sim: Simulator, conn, name: str = "channel"):
        self.sim = sim
        self.conn = conn
        self.name = name
        self._subs: list[Callable[[Event], None]] = []
        self._partial: dict[int, list[Packet]] = {}
        self.events_submitted = 0
        self.events_delivered = 0
        self._next_frame = 0

    # ------------------------------------------------------------------
    # Source side
    # ------------------------------------------------------------------
    def cmwritev_attr(self, size: int, attrs: AttributeSet | None = None, *,
                      marked: bool = True, tagged: bool = False,
                      deadline_s: float | None = None) -> int:
        """Submit one event of ``size`` bytes with piggybacked quality
        attributes; returns the event's frame id.

        ``deadline_s`` is the event's delivery budget from now: the
        transport abandons whatever is still untransmitted once it passes
        (deadline-aware frame scheduling).  ``None`` means no deadline.
        """
        frame_id = self._next_frame
        self._next_frame += 1
        deadline = self.sim.now + deadline_s if deadline_s else 0.0
        self.conn.submit(size, marked=marked, tagged=tagged,
                         frame_id=frame_id, attrs=attrs, deadline=deadline)
        self.events_submitted += 1
        return frame_id

    def submit(self, size: int, **kw) -> int:
        """Attribute-free convenience alias for :meth:`cmwritev_attr`."""
        return self.cmwritev_attr(size, None, **kw)

    def close(self) -> None:
        self.conn.finish()

    # ------------------------------------------------------------------
    # Sink side
    # ------------------------------------------------------------------
    def subscribe(self, handler: Callable[[Event], None]) -> None:
        self._subs.append(handler)

    def on_deliver(self, pkt: Packet, now: float) -> None:
        """Wire as the connection receiver's delivery callback."""
        parts = self._partial.setdefault(pkt.frame_id, [])
        parts.append(pkt)
        if pkt.last_of_frame:
            del self._partial[pkt.frame_id]
            ev = Event(
                frame_id=pkt.frame_id,
                size=sum(p.size for p in parts),
                submitted_at=min(p.created_at for p in parts),
                completed_at=now,
                segments=len(parts),
                tagged_segments=sum(1 for p in parts if p.tagged),
            )
            self.events_delivered += 1
            for fn in self._subs:
                fn(ev)
