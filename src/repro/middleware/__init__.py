"""IQ-ECho middleware: event channels, adaptive applications, metrics."""

from .adaptation import (AdaptationStrategy, DelayedResolutionAdaptation,
                         FecAdaptation, FrequencyAdaptation,
                         MarkingAdaptation, NullAdaptation,
                         ResolutionAdaptation)
from .application import AdaptiveSource
from .echo import Event, EventChannel
from .receiver import DeliveryLog

__all__ = [
    "AdaptationStrategy", "DelayedResolutionAdaptation", "FecAdaptation",
    "FrequencyAdaptation",
    "MarkingAdaptation", "NullAdaptation", "ResolutionAdaptation",
    "AdaptiveSource", "Event", "EventChannel", "DeliveryLog",
]
