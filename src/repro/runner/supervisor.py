"""One-shot worker-process supervision: timeouts, retries, SIGINT draining.

``ProcessPoolExecutor`` cannot kill an individual hung worker -- a stuck
``map`` call wedges the whole batch, and one dead worker poisons the pool.
The resilient batch path therefore runs each scenario in its own one-shot
``multiprocessing.Process`` connected by a pipe:

* a scenario that **raises** reports a classified failure message through
  the pipe (crash isolation);
* a scenario that **hangs** past its wall-clock budget is sent SIGTERM
  (which the child converts to :class:`TimeoutKilled`, giving
  ``run_scenario`` a moment to report its flight-recorder dump through
  the pipe), then killed (``SIGKILL``) and classified ``"timeout"``;
* a worker that **dies silently** (OOM kill, interpreter abort) is
  detected by pipe EOF and classified ``"worker-lost"``;
* transient kinds are **retried** with exponential backoff, bounded by
  ``retries``, without blocking the rest of the batch (a backoff is a
  ready-time in a heap, not a sleep);
* **SIGINT** drains gracefully: running workers are killed, finished
  scenarios keep their results, unfinished slots become
  ``FailedResult(kind="interrupted")``.

Scenario results are deterministic functions of their config, so the
supervisor's scheduling freedom (completion order, retries) can never
change what a successful batch returns.
"""

from __future__ import annotations

import heapq
import multiprocessing as mp
import signal
import time as _time
import traceback
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Callable

from ..invariants import InvariantViolation
from .failures import FailedResult, TRANSIENT_KINDS

__all__ = ["run_supervised", "describe_config", "classify_exception",
           "TimeoutKilled"]

#: Grace period between SIGTERM and SIGKILL on a timed-out worker: long
#: enough for the child to unwind through ``run_scenario`` and send its
#: flight dump, short enough not to stall the batch.
_TERM_GRACE_S = 1.0


class TimeoutKilled(BaseException):
    """Raised inside a timed-out worker by its SIGTERM handler.

    A ``BaseException`` (like ``KeyboardInterrupt``) so ordinary
    ``except Exception`` recovery blocks in scenario code cannot swallow
    the kill; ``run_scenario``'s forensics wrapper still sees it pass by
    and attaches the flight dump for the failure report.
    """


def describe_config(cfg) -> str:
    """Short triage label for failure rows."""
    return f"{cfg.transport}/{cfg.workload}/seed={cfg.seed}"


def classify_exception(exc: BaseException) -> str:
    """Failure kind for a raised exception (see :mod:`.failures`)."""
    if isinstance(exc, TimeoutKilled):
        return "timeout"
    return "invariant" if isinstance(exc, InvariantViolation) else "error"


def _child_main(conn, worker: Callable, cfg) -> None:
    """Worker-process entry: run one scenario, report through the pipe.

    The failure tuple's last element is the flight-recorder dump
    ``run_scenario`` attached to the exception (None when recording is
    disabled or the crash happened outside the scenario)."""

    def _on_term(signum, frame):
        raise TimeoutKilled("killed at wall-clock timeout")

    try:
        signal.signal(signal.SIGTERM, _on_term)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    try:
        res = worker(cfg)
    except BaseException as exc:
        conn.send(("fail", classify_exception(exc), type(exc).__name__,
                   str(exc), traceback.format_exc(),
                   getattr(exc, "flight_dump", None)))
    else:
        try:
            conn.send(("ok", res))
        except Exception as exc:
            # Result not picklable: report as a deterministic error rather
            # than dying silently (which would read as worker-lost).
            conn.send(("fail", "error", type(exc).__name__,
                       f"result not transferable: {exc}",
                       traceback.format_exc(),
                       getattr(res, "flight", None)))
    finally:
        conn.close()


class _Job:
    __slots__ = ("index", "cfg", "attempts")

    def __init__(self, index: int, cfg) -> None:
        self.index = index
        self.cfg = cfg
        self.attempts = 0


def run_supervised(tasks, worker: Callable, *, jobs: int = 1,
                   timeout: float | None = None, retries: int = 0,
                   retry_backoff_s: float = 0.05,
                   on_result: Callable[[int, Any], None] | None = None,
                   ) -> tuple[dict[int, Any], bool]:
    """Run ``tasks`` (an iterable of ``(index, cfg)``) through supervised
    one-shot worker processes.

    Returns ``(results, interrupted)`` where ``results`` maps each index
    to a scenario result or :class:`FailedResult` and ``interrupted``
    flags a SIGINT drain.  ``on_result`` observes each final (non-retried)
    outcome as it lands -- the checkpoint journal hook.
    """
    ctx = mp.get_context()
    results: dict[int, Any] = {}
    slots = max(int(jobs or 1), 1)

    # Ready heap: (ready_at, tiebreak, job).  Backoffs are future
    # ready-times, so retrying one scenario never stalls the others.
    ready: list[tuple[float, int, _Job]] = []
    order = 0
    for index, cfg in tasks:
        heapq.heappush(ready, (0.0, order, _Job(index, cfg)))
        order += 1

    # conn -> (process, job, deadline, started_at)
    running: dict[Any, tuple[Any, _Job, float | None, float]] = {}

    def _finish(job: _Job, value: Any) -> None:
        results[job.index] = value
        if on_result is not None:
            on_result(job.index, value)

    def _fail_or_retry(job: _Job, kind: str, message: str,
                       elapsed: float, flight=None) -> None:
        nonlocal order
        if kind in TRANSIENT_KINDS and job.attempts <= retries:
            delay = retry_backoff_s * (2 ** (job.attempts - 1))
            heapq.heappush(ready,
                           (_time.monotonic() + delay, order, job))
            order += 1
            return
        _finish(job, FailedResult(kind=kind, message=message,
                                  attempts=job.attempts, elapsed_s=elapsed,
                                  scenario=describe_config(job.cfg),
                                  flight=flight))

    def _kill(proc, conn) -> None:
        try:
            proc.kill()
        except Exception:
            pass
        proc.join()
        conn.close()

    def _terminate_collect(proc, conn):
        """SIGTERM a timed-out worker, give it a grace period to unwind
        and report its flight dump, then hard-kill regardless.  Returns
        the dump or None."""
        flight = None
        try:
            proc.terminate()
            if conn.poll(_TERM_GRACE_S):
                msg = conn.recv()
                if msg and msg[0] == "fail" and len(msg) >= 6:
                    flight = msg[5]
        except Exception:
            pass  # a worker too wedged to report still gets killed
        _kill(proc, conn)
        return flight

    try:
        while ready or running:
            now = _time.monotonic()
            while ready and len(running) < slots and ready[0][0] <= now:
                _, _, job = heapq.heappop(ready)
                job.attempts += 1
                r_conn, w_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(target=_child_main,
                                   args=(w_conn, worker, job.cfg),
                                   daemon=True)
                proc.start()
                w_conn.close()  # child holds the only writer now
                deadline = now + timeout if timeout is not None else None
                running[r_conn] = (proc, job, deadline, now)

            if not running:
                # Everything left is backing off; sleep to the nearest.
                _time.sleep(max(ready[0][0] - _time.monotonic(), 0.0))
                continue

            # Wake at the nearest deadline or backoff expiry, whichever
            # comes first; None blocks until some worker reports.
            nearest: float | None = None
            for _, _, deadline, _ in running.values():
                if deadline is not None:
                    nearest = (deadline if nearest is None
                               else min(nearest, deadline))
            if ready and len(running) < slots:
                nearest = (ready[0][0] if nearest is None
                           else min(nearest, ready[0][0]))
            wait_s = (None if nearest is None
                      else max(nearest - _time.monotonic(), 0.0))
            done = _conn_wait(list(running), timeout=wait_s)

            now = _time.monotonic()
            for conn in done:
                proc, job, _, started = running.pop(conn)
                try:
                    msg = conn.recv()
                except Exception:
                    msg = None  # pipe EOF/garbage: the worker died on us
                conn.close()
                proc.join()
                elapsed = now - started
                if msg is None:
                    _fail_or_retry(job, "worker-lost",
                                   "worker process died without reporting "
                                   f"(exit code {proc.exitcode})", elapsed)
                elif msg[0] == "ok":
                    _finish(job, msg[1])
                else:
                    _, kind, etype, emsg, tb, flight = msg
                    _finish(job, FailedResult(
                        kind=kind, error_type=etype, message=emsg,
                        traceback=tb, attempts=job.attempts,
                        elapsed_s=elapsed,
                        scenario=describe_config(job.cfg), flight=flight))

            for conn in [c for c, (_, _, dl, _) in running.items()
                         if dl is not None and now >= dl]:
                proc, job, _, started = running.pop(conn)
                flight = _terminate_collect(proc, conn)
                _fail_or_retry(job, "timeout",
                               f"exceeded {timeout:g}s wall-clock budget",
                               now - started, flight=flight)
    except KeyboardInterrupt:
        for conn, (proc, job, _, _) in running.items():
            _kill(proc, conn)
            _finish(job, FailedResult(kind="interrupted", attempts=job.attempts,
                                      scenario=describe_config(job.cfg)))
        while ready:
            _, _, job = heapq.heappop(ready)
            _finish(job, FailedResult(kind="interrupted", attempts=job.attempts,
                                      scenario=describe_config(job.cfg)))
        return results, True
    return results, False
