"""Sweep-level live progress reporting.

A table-regenerating sweep can be hundreds of scenario runs; with the
cache cold that is minutes of silence.  :class:`SweepProgress` maintains a
single carriage-return-overwritten status line on stderr::

    sweep: 37/120 done (3 cached, 1 failed)  elapsed 12.4s  eta 27.8s

Design constraints:

* **stdout stays clean** -- benches pipe their tables; progress goes to
  stderr only.
* **off by default when not a terminal** -- enabled when stderr is a TTY,
  forced on with ``REPRO_PROGRESS=1`` (CI logs) or off with
  ``REPRO_PROGRESS=0``; a disabled instance is a near-free no-op so
  :func:`~repro.runner.run_batch` always threads one through.
* **throttled** -- redraws at most every ``min_interval_s`` of wall time
  (plus always the first and last), so thousand-run cache-hot sweeps do
  not spend their time painting.
* ETA is computed over *fresh* completions only; cache hits land in one
  burst before execution starts and would poison the rate estimate.
"""

from __future__ import annotations

import os
import sys
import time

__all__ = ["SweepProgress", "progress_enabled"]


def progress_enabled(stream) -> bool:
    """Resolve the enable knob: ``REPRO_PROGRESS`` wins, else TTY-ness."""
    env = os.environ.get("REPRO_PROGRESS")
    if env is not None:
        return env not in ("", "0")
    try:
        return bool(stream.isatty())
    except (AttributeError, ValueError):
        return False


class SweepProgress:
    """One live status line for a batch of ``total`` scenarios."""

    def __init__(self, total: int, *, cached: int = 0, stream=None,
                 enabled: bool | None = None,
                 min_interval_s: float = 0.1, heartbeat=None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = (progress_enabled(self.stream) if enabled is None
                        else enabled)
        self.total = total
        self.cached = cached
        self.fresh_done = 0
        self.failed = 0
        self.min_interval_s = min_interval_s
        #: Optional :class:`repro.obs.live.HeartbeatWriter` mirroring the
        #: counters into an on-disk liveness file -- the pool parent is
        #: the only process that sees completions, so the progress line is
        #: the natural place to tap them.  Independent of ``enabled``
        #: (heartbeats serve remote watchers, not this terminal).
        self.heartbeat = heartbeat
        self._t0 = time.monotonic()
        self._last_draw = 0.0
        self._width = 0
        if self.enabled and total:
            self._draw(force=True)

    # ------------------------------------------------------------------
    @property
    def done(self) -> int:
        return self.cached + self.fresh_done

    def update(self, *, failed: bool = False) -> None:
        """Record one fresh completion (thread-safe enough: called only
        from the coordinating process, never from workers)."""
        self.fresh_done += 1
        if failed:
            self.failed += 1
        if self.heartbeat is not None:
            self.heartbeat.pool_update(done=self.done, failed=self.failed)
        if self.enabled:
            self._draw(force=self.done >= self.total)

    def finish(self) -> None:
        """Final redraw plus newline so later output starts clean."""
        if self.heartbeat is not None:
            self.heartbeat.close()
        if self.enabled and self.total:
            self._draw(force=True)
            self.stream.write("\n")
            self.stream.flush()

    # ------------------------------------------------------------------
    def _eta_s(self) -> float | None:
        remaining = self.total - self.done
        if remaining <= 0 or self.fresh_done == 0:
            return None
        rate = self.fresh_done / max(time.monotonic() - self._t0, 1e-9)
        return remaining / rate

    def _draw(self, *, force: bool = False) -> None:
        now = time.monotonic()
        if not force and now - self._last_draw < self.min_interval_s:
            return
        self._last_draw = now
        parts = [f"sweep: {self.done}/{self.total} done"]
        detail = []
        if self.cached:
            detail.append(f"{self.cached} cached")
        if self.failed:
            detail.append(f"{self.failed} failed")
        if detail:
            parts.append(f"({', '.join(detail)})")
        parts.append(f"elapsed {now - self._t0:.1f}s")
        eta = self._eta_s()
        if eta is not None:
            parts.append(f"eta {eta:.1f}s")
        line = "  ".join(parts)
        pad = max(self._width - len(line), 0)
        self._width = len(line)
        try:
            self.stream.write("\r" + line + " " * pad)
            self.stream.flush()
        except (OSError, ValueError):
            self.enabled = False  # closed/broken stream: go quiet
