"""Typed failure results for resilient batch execution.

A sweep of hundreds of scenarios must survive one insane config: instead
of aborting the batch, the resilient :func:`~repro.runner.run_batch` path
captures each failed scenario as a :class:`FailedResult` row -- same slot
in the returned list/dict a :class:`ScenarioResult` would occupy, carrying
the classified failure kind, the worker traceback and the retry count.

Failure kinds
-------------
``"error"``
    The scenario raised a Python exception (deterministic -- never
    retried; rerunning the same config reproduces it).
``"invariant"``
    A :class:`~repro.invariants.InvariantViolation`: the run broke a
    simulation correctness law.  Deterministic, never retried.
``"timeout"``
    The per-scenario wall-clock budget expired and the worker was killed.
    Transient (host load can cause it) -- eligible for retry.
``"worker-lost"``
    The worker process died without reporting (OOM kill, crash, pool
    breakage).  Transient -- eligible for retry.
``"interrupted"``
    The batch received SIGINT while this scenario was queued or running;
    completed scenarios keep their real results.
"""

from __future__ import annotations

__all__ = ["FailedResult", "BatchExecutionError", "TRANSIENT_KINDS"]

#: Failure kinds worth retrying: caused by the host, not the config.
TRANSIENT_KINDS = frozenset({"timeout", "worker-lost"})


class FailedResult:
    """Placeholder result for a scenario that did not produce one.

    Mirrors the :class:`~repro.experiments.common.ScenarioResult` surface
    just enough for batch plumbing (``failed``/``completed``/``trace``
    attributes, ``detach()``), but accessing ``summary`` -- the one thing
    every metric consumer reads -- raises immediately with the original
    worker traceback, so a failure can never silently contribute zeros to
    a table.
    """

    failed = True
    completed = False
    trace = None
    invariant_checks = 0
    #: Flight-recorder dump (:mod:`repro.obs.flight`) captured at the
    #: moment of failure -- the last N causal events before the crash,
    #: violation or timeout kill.  ``repro forensics`` renders it.
    flight = None

    def __init__(self, *, kind: str, error_type: str = "", message: str = "",
                 traceback: str = "", attempts: int = 1,
                 elapsed_s: float = 0.0, scenario: str = "",
                 flight: dict | None = None):
        self.kind = kind
        self.error_type = error_type
        self.message = message
        self.traceback = traceback
        self.attempts = attempts
        self.elapsed_s = elapsed_s
        self.scenario = scenario
        if flight is not None:
            self.flight = flight

    @property
    def transient(self) -> bool:
        """True when the failure kind is retry-eligible."""
        return self.kind in TRANSIENT_KINDS

    @property
    def summary(self) -> dict:
        raise BatchExecutionError(self)

    def __getitem__(self, key: str) -> float:
        raise BatchExecutionError(self)

    def detach(self) -> "FailedResult":
        return self

    def describe(self) -> str:
        """One-line triage string for reports and logs."""
        head = f"{self.kind}"
        if self.error_type:
            head += f" ({self.error_type})"
        if self.attempts > 1:
            head += f" after {self.attempts} attempts"
        body = self.message.strip().splitlines()
        return f"{head}: {body[0]}" if body else head

    def __repr__(self) -> str:
        return f"<FailedResult {self.describe()}>"


class BatchExecutionError(RuntimeError):
    """Raised when a batch running with ``on_error="raise"`` fails, or when
    a :class:`FailedResult`'s metrics are accessed.

    Carries the first failure (``.failure``) with its full worker
    traceback embedded in the message.
    """

    def __init__(self, failure: FailedResult):
        self.failure = failure
        msg = (f"scenario failed [{failure.kind}]"
               + (f" ({failure.error_type})" if failure.error_type else "")
               + (f" after {failure.attempts} attempts"
                  if failure.attempts > 1 else "")
               + (f": {failure.message}" if failure.message else ""))
        if failure.scenario:
            msg += f" | scenario: {failure.scenario}"
        if failure.traceback:
            msg += "\n--- worker traceback ---\n" + failure.traceback.rstrip()
        super().__init__(msg)
