"""Batch execution of independent scenarios: process-pool fan-out plus a
persistent on-disk results cache.

Every artifact in the paper's evaluation is a batch of *independent*
``run_scenario`` calls (a table's rows, a sweep's points), so the first-order
performance lever for reproducing the paper is fanning those runs out across
cores and never re-running a configuration whose parameters have not
changed.  This package supplies both:

* :func:`run_batch` / :func:`run_one` -- execute scenario configs across a
  ``ProcessPoolExecutor`` (``jobs`` workers) with deterministic per-scenario
  seeding: results are bit-identical whatever the worker count, because
  every scenario derives its randomness from its own ``cfg.seed``.
* :class:`ResultsCache` / :func:`memo` -- pickle results under a key that
  hashes the full :class:`~repro.experiments.common.ScenarioConfig` plus a
  salt over the package's source code, so editing any ``repro`` module
  invalidates every cached result while a parameter-identical rerun is a
  pure cache hit.

Environment knobs:

``REPRO_CACHE_DIR``
    Cache directory (default ``~/.cache/repro-iq-rudp``).
``REPRO_NO_CACHE=1``
    Disable the persistent cache entirely (compute everything fresh,
    write nothing).
``REPRO_PROGRESS=1`` / ``=0``
    Force the sweep progress line (stderr) on or off; default is on only
    when stderr is a terminal.  See :mod:`.progress`.

Resilient execution (PR 4) rides on :func:`run_batch`'s keywords:
``on_error="capture"`` isolates per-scenario crashes as
:class:`FailedResult` rows, ``timeout=S`` kills hung scenarios,
``retries=N`` re-runs transient losses with exponential backoff, and
``checkpoint=PATH`` journals completions for byte-identical resume after
a kill.  See :mod:`.failures`, :mod:`.supervisor`, :mod:`.checkpoint`.
"""

from .cache import ResultsCache, cache_enabled, default_cache, memo
from .checkpoint import SweepJournal
from .failures import BatchExecutionError, FailedResult
from .hashing import code_salt, config_fingerprint, config_key
from .pool import run_batch, run_one
from .progress import SweepProgress

__all__ = [
    "ResultsCache", "cache_enabled", "default_cache", "memo",
    "code_salt", "config_fingerprint", "config_key",
    "run_batch", "run_one", "SweepProgress",
    "FailedResult", "BatchExecutionError", "SweepJournal",
]
