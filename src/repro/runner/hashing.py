"""Stable cache keys for scenario configurations.

A key must be (a) identical across processes and sessions for the same
parameters -- so it cannot use ``hash()`` or object identity -- and (b)
different whenever a rerun could produce a different result.  Two inputs
matter: the full :class:`ScenarioConfig` field set, and the simulator code
itself.  The latter is folded in as a *code salt*: a digest over every
``repro`` source file, recomputed once per process, so any code edit
invalidates the whole cache rather than serving results from a stale
implementation.
"""

from __future__ import annotations

import hashlib
import pathlib
from typing import Any

__all__ = ["code_salt", "callable_token", "config_fingerprint", "config_key"]

_SALT_CACHE: str | None = None


def code_salt() -> str:
    """Digest of all ``repro`` package sources (memoised per process)."""
    global _SALT_CACHE
    if _SALT_CACHE is None:
        pkg_root = pathlib.Path(__file__).resolve().parent.parent
        h = hashlib.sha256()
        for path in sorted(pkg_root.rglob("*.py")):
            h.update(str(path.relative_to(pkg_root)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _SALT_CACHE = h.hexdigest()
    return _SALT_CACHE


def callable_token(fn: Any) -> str | None:
    """Stable identity for a config's callable field (adaptation factory).

    Module-level functions and classes are identified by dotted name.
    Lambdas and local closures have no stable cross-process identity, so
    they yield ``None`` -- the config is then *uncacheable* (it still runs,
    just never through the persistent cache).
    """
    if fn is None:
        return "none"
    qualname = getattr(fn, "__qualname__", None)
    module = getattr(fn, "__module__", None)
    if not qualname or not module:
        return None
    if "<lambda>" in qualname or "<locals>" in qualname:
        return None
    return f"{module}.{qualname}"


def config_fingerprint(cfg: Any) -> str | None:
    """Canonical text form of a ``ScenarioConfig``, or None if uncacheable.

    Iterates the instance ``__dict__`` so new config fields are picked up
    automatically (a new field changes the fingerprint, which is the safe
    direction: old cache entries stop matching).
    """
    parts = []
    for name in sorted(vars(cfg)):
        value = vars(cfg)[name]
        if callable(value):
            token = callable_token(value)
            if token is None:
                return None
            parts.append(f"{name}={token}")
        else:
            parts.append(f"{name}={value!r}")
    return ";".join(parts)


def config_key(cfg: Any) -> str | None:
    """Cache key for a config (fingerprint + code salt), or None."""
    fp = config_fingerprint(cfg)
    if fp is None:
        return None
    h = hashlib.sha256()
    h.update(code_salt().encode())
    h.update(b"\0")
    h.update(fp.encode())
    return h.hexdigest()[:40]
