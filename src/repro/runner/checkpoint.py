"""Sweep checkpoint journal: resume an interrupted batch where it stopped.

``run_batch(..., checkpoint=PATH)`` appends each successfully completed
scenario -- keyed by its :func:`~repro.runner.hashing.config_key`, which
already mixes in the code salt -- to an append-only journal of pickle
frames.  A re-run of the same batch replays the journal first and only
executes the configs that are missing, so a sweep killed at scenario 700
of 1000 restarts at 701, byte-identical to an uninterrupted run.

Design
------
* **Append-only pickle frames** ``("v1", key, result)``: one frame per
  completed scenario, flushed per write.  A crash mid-write leaves a torn
  tail, which :meth:`SweepJournal.load` detects and truncates away -- every
  frame before the tear is still good.
* **Code-salted keys**: editing any ``repro`` source changes every key, so
  a stale journal silently contributes nothing (same invalidation rule as
  the results cache it composes with).
* **Failures are not journaled.** Only real :class:`ScenarioResult` values
  enter the journal; a failed/interrupted scenario re-runs on resume.
"""

from __future__ import annotations

import os
import pathlib
import pickle

from ..experiments.common import ScenarioResult

__all__ = ["SweepJournal"]

_MAGIC = "v1"


class SweepJournal:
    """Append-only journal of ``(config key, result)`` completions.

    ``expect`` names the result type(s) a frame may carry; the default
    (:class:`ScenarioResult` only) preserves the sweep-checkpoint contract
    that failures are never journaled.  The campaign layer passes
    ``expect=(ScenarioResult, FailedResult)`` so a worker's completion
    journal records deterministic failures too.
    """

    def __init__(self, path: str | os.PathLike, *,
                 expect: type | tuple[type, ...] = ScenarioResult):
        self.path = pathlib.Path(path)
        self.expect = expect
        self._fh = None

    # ------------------------------------------------------------------
    def load(self) -> dict[str, ScenarioResult]:
        """Replay the journal; returns ``{key: result}`` for every intact
        frame.  Detects a torn tail (crash mid-append) and truncates the
        file back to the last whole frame so subsequent appends are clean.
        Malformed or wrong-typed frames end the replay at that point."""
        done: dict[str, ScenarioResult] = {}
        try:
            fh = open(self.path, "rb")
        except OSError:
            return done
        with fh:
            good_end = 0
            while True:
                try:
                    frame = pickle.load(fh)
                except EOFError:
                    break
                except Exception:
                    break  # torn/corrupt tail: keep what replayed
                if (not isinstance(frame, tuple) or len(frame) != 3
                        or frame[0] != _MAGIC
                        or not isinstance(frame[1], str)
                        or not isinstance(frame[2], self.expect)):
                    break
                done[frame[1]] = frame[2]
                good_end = fh.tell()
            tail = os.fstat(fh.fileno()).st_size - good_end
        if tail > 0:
            with open(self.path, "ab") as out:
                out.truncate(good_end)
        return done

    # ------------------------------------------------------------------
    def append(self, key: str, result) -> None:
        """Record one completion (flushed immediately so a later kill
        cannot lose it)."""
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "ab")
        pickle.dump((_MAGIC, key, result), self._fh,
                    protocol=pickle.HIGHEST_PROTOCOL)
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
