"""Process-pool execution of independent scenario batches.

Scenarios are embarrassingly parallel: each ``run_scenario`` builds its own
simulator, topology and RNG streams from the config alone, and every random
stream derives from ``cfg.seed`` (see :mod:`repro.sim.rand`).  Worker count
therefore cannot change results -- ``jobs=1`` and ``jobs=N`` are
bit-identical -- and the pool is free to schedule runs in any order.

Results returned by :func:`run_batch` are *detached* (their simulator heap
is drained, see ``ScenarioResult.detach``): they carry every metric, log
and counter the benches read, but can no longer be resumed.

Tracing (``trace=PATH``) rides on the same machinery: every cache *miss*
runs with a per-scenario :class:`~repro.obs.TraceBus` collecting into an
in-memory sink, the events ship back to the parent with the result, and the
parent writes one deterministic JSONL file with the runs in batch order --
so the trace file, like the results, is identical for any worker count.
Cache *hits* are recorded in the trace header as ``"cached": true`` with no
event stream (the cache stores metrics, not events).
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Mapping, Sequence

from ..experiments.common import ScenarioConfig, ScenarioResult, run_scenario
from ..obs.sinks import RingBufferSink, write_trace
from .cache import ResultsCache, cache_enabled, default_cache
from .hashing import config_key

__all__ = ["run_batch", "run_one"]


def _run_detached(cfg: ScenarioConfig) -> ScenarioResult:
    """Worker entry point: execute one scenario and strip the event heap
    so the result pickles back to the parent."""
    return run_scenario(cfg).detach()


def _run_traced(cfg: ScenarioConfig) -> ScenarioResult:
    """Worker entry point for traced batches: collect the run's full event
    stream and attach it to the (detached, picklable) result."""
    sink = RingBufferSink()
    res = run_scenario(cfg, trace_sink=sink).detach()
    res.trace = sink.events
    return res


def _trace_meta(cfg: ScenarioConfig) -> dict[str, Any]:
    """Per-run header fields for the trace file."""
    meta = {"transport": cfg.transport, "workload": cfg.workload,
            "seed": cfg.seed}
    if cfg.faults is not None:
        meta["faults"] = cfg.faults.describe()
    return meta


def _resolve_cache(cache: ResultsCache | bool | None) -> ResultsCache | None:
    """Map the ``cache`` argument to an active cache or None.

    ``None``/``True`` -> the default environment-configured cache;
    ``False`` -> no caching; a :class:`ResultsCache` -> that cache.
    ``REPRO_NO_CACHE`` wins over everything.
    """
    if not cache_enabled() or cache is False:
        return None
    if isinstance(cache, ResultsCache):
        return cache
    return default_cache()


def run_one(cfg: ScenarioConfig, *,
            cache: ResultsCache | bool | None = None,
            trace: str | None = None) -> ScenarioResult:
    """Cached single-scenario run (always detached)."""
    return run_batch([cfg], cache=cache, trace=trace)[0]


def run_batch(configs: Mapping[Any, ScenarioConfig] |
              Sequence[ScenarioConfig], *,
              jobs: int | None = 1,
              cache: ResultsCache | bool | None = None,
              trace: str | None = None):
    """Execute a batch of independent scenarios, in parallel when asked.

    ``configs`` is either a mapping (returns ``{key: ScenarioResult}``,
    insertion order preserved) or a sequence (returns a list).  ``jobs``
    is the worker-process count; ``None`` or ``1`` runs in-process, and
    only cache *misses* are fanned out.  Configs whose fields cannot be
    stably hashed (lambda adaptation factories) always run fresh.

    ``trace`` names a JSONL(.gz) file to write the batch's event streams
    to; see the module docstring for determinism and cache semantics.
    """
    keyed = isinstance(configs, Mapping)
    names = list(configs.keys()) if keyed else None
    cfgs = list(configs.values()) if keyed else list(configs)
    store = _resolve_cache(cache)
    worker = _run_traced if trace is not None else _run_detached

    results: list[ScenarioResult | None] = [None] * len(cfgs)
    misses: list[int] = []
    keys: list[str | None] = []
    for i, cfg in enumerate(cfgs):
        key = config_key(cfg) if store is not None else None
        keys.append(key)
        hit = store.get(key) if key is not None else None
        if hit is not None:
            results[i] = hit
        else:
            misses.append(i)

    if misses:
        todo = [cfgs[i] for i in misses]
        if jobs is not None and jobs > 1 and len(todo) > 1:
            with ProcessPoolExecutor(max_workers=min(jobs, len(todo))) as ex:
                fresh = list(ex.map(worker, todo))
        else:
            fresh = [worker(cfg) for cfg in todo]
        for i, res in zip(misses, fresh):
            results[i] = res
            if store is not None and keys[i] is not None:
                # Event streams are per-run evidence, not results: they are
                # deliberately kept out of the persistent cache payload.
                events = res.trace
                res.trace = None
                try:
                    store.put(keys[i], res)
                except (pickle.PicklingError, TypeError, AttributeError):
                    pass  # unpicklable payloads just skip persistence
                finally:
                    res.trace = events

    if trace is not None:
        run_entries = []
        for i, (cfg, res) in enumerate(zip(cfgs, results)):
            label = str(names[i]) if keyed else str(i)
            cached = i not in misses
            run_entries.append({
                "run": label, "cached": cached,
                "events": None if cached else getattr(res, "trace", None),
                "meta": _trace_meta(cfg),
            })
        write_trace(trace, run_entries)

    if keyed:
        return dict(zip(names, results))
    return results
