"""Process-pool execution of independent scenario batches.

Scenarios are embarrassingly parallel: each ``run_scenario`` builds its own
simulator, topology and RNG streams from the config alone, and every random
stream derives from ``cfg.seed`` (see :mod:`repro.sim.rand`).  Worker count
therefore cannot change results -- ``jobs=1`` and ``jobs=N`` are
bit-identical -- and the pool is free to schedule runs in any order.

Results returned by :func:`run_batch` are *detached* (their simulator heap
is drained, see ``ScenarioResult.detach``): they carry every metric, log
and counter the benches read, but can no longer be resumed.

Tracing (``trace=PATH``) rides on the same machinery: every cache *miss*
runs with a per-scenario :class:`~repro.obs.TraceBus` collecting into an
in-memory sink, the events ship back to the parent with the result, and the
parent writes one deterministic JSONL file with the runs in batch order --
so the trace file, like the results, is identical for any worker count.
Cache *hits* are recorded in the trace header as ``"cached": true`` with no
event stream (the cache stores metrics, not events).

Resilient execution
-------------------
The legacy contract -- any scenario exception propagates out of
``run_batch`` unchanged -- is the default.  Asking for any resilience
feature (``on_error="capture"``, a ``timeout``, ``retries`` or a
``checkpoint``) switches the misses onto the supervised one-shot-process
path (:mod:`.supervisor`): crashes become :class:`FailedResult` rows,
hangs are killed at the wall-clock budget, transient losses retry with
exponential backoff, SIGINT drains with partial results, and completed
scenarios are journaled to the checkpoint for byte-identical resume.
With ``on_error="raise"`` (still the default) a surviving failure is
re-raised as :class:`BatchExecutionError` carrying the worker traceback;
``"capture"`` returns the failures in-place so sweeps can triage.
"""

from __future__ import annotations

import hashlib
import pickle
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Mapping, Sequence

from ..experiments.common import ScenarioConfig, ScenarioResult, run_scenario
from ..obs.ledger import record_run
from ..obs.sinks import RingBufferSink, write_trace
from .cache import ResultsCache, cache_enabled, default_cache
from .checkpoint import SweepJournal
from .failures import BatchExecutionError, FailedResult
from .hashing import config_fingerprint, config_key
from .progress import SweepProgress
from .supervisor import classify_exception, describe_config, run_supervised

__all__ = ["run_batch", "run_one"]


def _run_detached(cfg: ScenarioConfig) -> ScenarioResult:
    """Worker entry point: execute one scenario and strip the event heap
    so the result pickles back to the parent."""
    return run_scenario(cfg).detach()


def _run_traced(cfg: ScenarioConfig) -> ScenarioResult:
    """Worker entry point for traced batches: collect the run's full event
    stream and attach it to the (detached, picklable) result."""
    sink = RingBufferSink()
    res = run_scenario(cfg, trace_sink=sink).detach()
    res.trace = sink.events
    return res


def _trace_meta(cfg: ScenarioConfig,
                res: ScenarioResult | FailedResult | None) -> dict[str, Any]:
    """Per-run header fields for the trace file.

    Failure metadata is flattened in (``write_trace`` merges the dict into
    the run head line), so ``repro report`` can render failed runs from
    the head line alone.
    """
    meta = {"transport": cfg.transport, "workload": cfg.workload,
            "seed": cfg.seed}
    if cfg.faults is not None:
        meta["faults"] = cfg.faults.describe()
    if isinstance(res, FailedResult):
        meta["failed"] = True
        meta["failed_kind"] = res.kind
        if res.error_type:
            meta["error_type"] = res.error_type
        if res.message:
            meta["error"] = res.message.splitlines()[0][:200]
        if res.attempts > 1:
            meta["attempts"] = res.attempts
    return meta


def _resolve_cache(cache: ResultsCache | bool | None) -> ResultsCache | None:
    """Map the ``cache`` argument to an active cache or None.

    ``None``/``True`` -> the default environment-configured cache;
    ``False`` -> no caching; a :class:`ResultsCache` -> that cache.
    ``REPRO_NO_CACHE`` wins over everything.
    """
    if not cache_enabled() or cache is False:
        return None
    if isinstance(cache, ResultsCache):
        return cache
    return default_cache()


def _validate_jobs(jobs: int | None) -> int:
    """Normalise ``jobs`` to a positive int; reject nonsense loudly.

    ``jobs=0`` or a negative count used to fall through to the serial
    path silently -- a typo'd ``--jobs 0`` ran a thousand-scenario sweep
    on one core without a word.  Booleans are rejected too (``True`` is
    an ``int`` that would "work").
    """
    if jobs is None:
        return 1
    if isinstance(jobs, bool) or not isinstance(jobs, int):
        raise ValueError(f"jobs must be a positive integer or None, "
                         f"got {jobs!r}")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1 (got {jobs}); use jobs=1 or "
                         f"None for in-process execution")
    return jobs


def _capture_inprocess(cfg: ScenarioConfig, worker: Callable
                       ) -> ScenarioResult | FailedResult:
    """Serial crash isolation: same classification as the supervisor, no
    process boundary (used when neither timeouts nor parallelism are
    requested)."""
    try:
        return worker(cfg)
    except Exception as exc:
        return FailedResult(kind=classify_exception(exc),
                            error_type=type(exc).__name__, message=str(exc),
                            traceback=traceback.format_exc(), attempts=1,
                            scenario=describe_config(cfg),
                            flight=getattr(exc, "flight_dump", None))


def _pool_heartbeat(checkpoint: str | None, total: int):
    """A liveness file for this batch's coordinating process, or None.

    Armed by ``REPRO_HEARTBEAT_DIR`` (explicit directory) or implicitly by
    a checkpointed batch (``<checkpoint>.heartbeats`` next to the
    journal); ``REPRO_HEARTBEAT=0`` kills it either way.  Plain batches
    with neither stay exactly as before -- two env lookups.
    """
    import os

    from ..obs.live import HeartbeatWriter, heartbeat_enabled
    if not heartbeat_enabled():
        return None
    directory = os.environ.get("REPRO_HEARTBEAT_DIR")
    if not directory and checkpoint is not None:
        directory = os.fspath(checkpoint) + ".heartbeats"
    if not directory:
        return None
    return HeartbeatWriter(directory, f"pool-{os.getpid()}", total=total)


def run_one(cfg: ScenarioConfig, *,
            cache: ResultsCache | bool | None = None,
            trace: str | None = None, **kw) -> ScenarioResult:
    """Cached single-scenario run (always detached).  Resilience keywords
    (``on_error``/``timeout``/``retries``/``checkpoint``) pass through to
    :func:`run_batch`."""
    return run_batch([cfg], cache=cache, trace=trace, **kw)[0]


def run_batch(configs: Mapping[Any, ScenarioConfig] |
              Sequence[ScenarioConfig], *,
              jobs: int | None = 1,
              cache: ResultsCache | bool | None = None,
              trace: str | None = None,
              on_error: str = "raise",
              timeout: float | None = None,
              retries: int = 0,
              retry_backoff_s: float = 0.05,
              checkpoint: str | None = None):
    """Execute a batch of independent scenarios, in parallel when asked.

    ``configs`` is either a mapping (returns ``{key: result}``, insertion
    order preserved) or a sequence (returns a list).  ``jobs`` is the
    worker-process count; ``None`` or ``1`` runs in-process, and only
    cache *misses* are fanned out.  Configs whose fields cannot be stably
    hashed (lambda adaptation factories) always run fresh.

    ``trace`` names a JSONL(.gz) file to write the batch's event streams
    to; see the module docstring for determinism and cache semantics.

    Resilience (see module docstring):

    on_error : ``"raise"`` (default) propagates the first failure --
        unchanged from the worker for the legacy path,
        :class:`BatchExecutionError` for the supervised path.
        ``"capture"`` returns :class:`FailedResult` rows in-place.
    timeout : per-scenario wall-clock budget in seconds; expiry kills the
        worker and classifies the run ``"timeout"``.
    retries : extra attempts for *transient* failures (timeout /
        worker-lost) with ``retry_backoff_s * 2**attempt`` backoff.
        Deterministic Python exceptions never retry.
    checkpoint : path of an append-only journal of completed scenarios;
        re-running the same batch with the same path resumes, re-executing
        only what is missing.  Composes with the results cache (both are
        keyed by the code-salted config key).
    """
    jobs = _validate_jobs(jobs)
    if on_error not in ("raise", "capture"):
        raise ValueError(f"on_error must be 'raise' or 'capture', "
                         f"got {on_error!r}")
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be positive, got {timeout!r}")
    if retries < 0:
        raise ValueError(f"retries cannot be negative, got {retries!r}")

    keyed = isinstance(configs, Mapping)
    names = list(configs.keys()) if keyed else None
    cfgs = list(configs.values()) if keyed else list(configs)
    store = _resolve_cache(cache)
    worker = _run_traced if trace is not None else _run_detached
    resilient = (on_error == "capture" or timeout is not None
                 or retries > 0 or checkpoint is not None)

    journal = SweepJournal(checkpoint) if checkpoint is not None else None
    journal_done = journal.load() if journal is not None else {}

    results: list[Any] = [None] * len(cfgs)
    misses: list[int] = []
    keys: list[str | None] = []
    need_keys = store is not None or journal is not None
    for i, cfg in enumerate(cfgs):
        key = config_key(cfg) if need_keys else None
        keys.append(key)
        hit = None
        if key is not None:
            if store is not None:
                hit = store.get(key, expect=ScenarioResult)
            if hit is None:
                hit = journal_done.get(key)
        if hit is not None:
            results[i] = hit
        else:
            misses.append(i)

    def _persist(i: int, res: Any) -> None:
        """Cache + journal + ledger one fresh success (event streams stay
        out of all three: they are per-run evidence, not results)."""
        if not isinstance(res, ScenarioResult):
            return
        fp = config_fingerprint(cfgs[i])
        digest = (hashlib.sha256(fp.encode()).hexdigest()[:20]
                  if fp is not None else None)
        record_run("scenario",
                   str(names[i]) if keyed else f"cfg:{digest or 'dynamic'}",
                   res.summary, fingerprint=digest)
        if keys[i] is None:
            return
        events = res.trace
        res.trace = None
        try:
            if store is not None:
                try:
                    store.put(keys[i], res)
                except (pickle.PicklingError, TypeError, AttributeError):
                    pass  # unpicklable payloads just skip persistence
            if journal is not None:
                try:
                    journal.append(keys[i], res)
                except (pickle.PicklingError, TypeError, AttributeError,
                        OSError):
                    pass
        finally:
            res.trace = events

    interrupted = False
    progress = SweepProgress(len(cfgs), cached=len(cfgs) - len(misses),
                             heartbeat=_pool_heartbeat(checkpoint,
                                                       len(cfgs)))
    try:
        if misses and not resilient:
            # Legacy fast path: byte-for-byte the pre-resilience behaviour
            # (exceptions propagate unchanged; pool map for parallelism).
            todo = [cfgs[i] for i in misses]
            if jobs > 1 and len(todo) > 1:
                with ProcessPoolExecutor(
                        max_workers=min(jobs, len(todo))) as ex:
                    fresh = []
                    for res in ex.map(worker, todo):
                        fresh.append(res)
                        progress.update()
            else:
                fresh = []
                for cfg in todo:
                    fresh.append(worker(cfg))
                    progress.update()
            for i, res in zip(misses, fresh):
                results[i] = res
                _persist(i, res)
        elif misses:
            if jobs == 1 and timeout is None:
                # In-process capture: no workers to lose or kill, so
                # retries have nothing transient to act on.
                for i in misses:
                    res = _capture_inprocess(cfgs[i], worker)
                    results[i] = res
                    _persist(i, res)
                    progress.update(failed=isinstance(res, FailedResult))
            else:
                def _on_result(i: int, res: Any) -> None:
                    _persist(i, res)
                    progress.update(failed=isinstance(res, FailedResult))

                got, interrupted = run_supervised(
                    [(i, cfgs[i]) for i in misses], worker, jobs=jobs,
                    timeout=timeout, retries=retries,
                    retry_backoff_s=retry_backoff_s, on_result=_on_result)
                for i in misses:
                    results[i] = got.get(i)
    finally:
        progress.finish()
        if journal is not None:
            journal.close()

    # Supervisor gaps (only possible on interrupt) become typed rows too.
    for i in misses:
        if results[i] is None:
            results[i] = FailedResult(kind="interrupted",
                                      scenario=describe_config(cfgs[i]))

    if trace is not None:
        run_entries = []
        for i, (cfg, res) in enumerate(zip(cfgs, results)):
            label = str(names[i]) if keyed else str(i)
            cached = i not in misses
            failed = isinstance(res, FailedResult)
            run_entries.append({
                "run": label, "cached": cached,
                "events": (None if cached or failed
                           else getattr(res, "trace", None)),
                "meta": _trace_meta(cfg, res),
            })
        write_trace(trace, run_entries)

    if interrupted and on_error == "raise":
        raise KeyboardInterrupt
    if on_error == "raise":
        for res in results:
            if isinstance(res, FailedResult):
                raise BatchExecutionError(res)

    if keyed:
        return dict(zip(names, results))
    return results
