"""Persistent on-disk results cache.

Entries are pickles written atomically (tmp file + rename) under a content
key from :mod:`.hashing`, so concurrent workers and interrupted runs can
never leave a torn entry.  Any unreadable entry is treated as a miss and
overwritten -- the cache is always safe to delete wholesale.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import pickle
import tempfile
from typing import Any, Callable

from .hashing import code_salt

__all__ = ["ResultsCache", "cache_enabled", "default_cache", "memo",
           "detach_tree"]

#: Environment variable naming the cache directory.
ENV_DIR = "REPRO_CACHE_DIR"
#: Set to ``1`` (any non-empty value) to disable the persistent cache.
ENV_OFF = "REPRO_NO_CACHE"


def cache_enabled() -> bool:
    """False when ``REPRO_NO_CACHE`` is set to a non-empty value."""
    return not os.environ.get(ENV_OFF)


def _default_root() -> pathlib.Path:
    env = os.environ.get(ENV_DIR)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro-iq-rudp"


class ResultsCache:
    """Keyed pickle store with hit/miss accounting.

    ``root`` defaults to ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-iq-rudp``.
    The directory is created lazily on first write.
    """

    def __init__(self, root: str | os.PathLike | None = None):
        self.root = pathlib.Path(root) if root is not None else _default_root()
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.pkl"

    def get(self, key: str) -> Any | None:
        """Stored value for ``key``, or None on miss/corruption."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` (atomic replace)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


def default_cache() -> ResultsCache:
    """A cache on the default (environment-configured) directory."""
    return ResultsCache()


def detach_tree(obj: Any) -> Any:
    """Recursively ``detach()`` every scenario result in a container.

    Experiment helpers return results nested in dicts/lists/tuples
    (e.g. Table 6's ``{rate: {row: result}}``); this walks those shapes so
    an arbitrary experiment payload can be pickled.  Returns ``obj``.
    """
    detach = getattr(obj, "detach", None)
    if callable(detach):
        detach()
    elif isinstance(obj, dict):
        for v in obj.values():
            detach_tree(v)
    elif isinstance(obj, (list, tuple)):
        for v in obj:
            detach_tree(v)
    return obj


def memo(key: str, fn: Callable[[], Any], *,
         cache: ResultsCache | None = None) -> Any:
    """Persistent memoisation of a named experiment run.

    The effective key mixes the caller's name with the code salt, so cached
    artifacts survive across sessions but never across code edits.  With
    the cache disabled (``REPRO_NO_CACHE``) this is just ``fn()``.
    """
    if not cache_enabled():
        return fn()
    if cache is None:
        cache = default_cache()
    digest = hashlib.sha256(
        (code_salt() + "\0" + key).encode()).hexdigest()[:40]
    value = cache.get(digest)
    if value is None:
        value = detach_tree(fn())
        try:
            cache.put(digest, value)
        except (pickle.PicklingError, TypeError, AttributeError):
            # Unpicklable payloads simply skip persistence.
            pass
    return value
