"""Persistent on-disk results cache.

Entries are pickles written atomically (tmp file + rename) under a content
key from :mod:`.hashing`, so concurrent workers and interrupted runs can
never leave a torn entry.  Any unreadable entry is treated as a miss and
overwritten -- the cache is always safe to delete wholesale.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import pickle
import tempfile
import warnings
from typing import Any, Callable

from .hashing import code_salt

__all__ = ["ResultsCache", "cache_enabled", "default_cache", "memo",
           "detach_tree"]

#: Environment variable naming the cache directory.
ENV_DIR = "REPRO_CACHE_DIR"
#: Set to ``1`` (any non-empty value) to disable the persistent cache.
ENV_OFF = "REPRO_NO_CACHE"


def cache_enabled() -> bool:
    """False when ``REPRO_NO_CACHE`` is set to a non-empty value."""
    return not os.environ.get(ENV_OFF)


def _default_root() -> pathlib.Path:
    env = os.environ.get(ENV_DIR)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro-iq-rudp"


class ResultsCache:
    """Keyed pickle store with hit/miss accounting.

    ``root`` defaults to ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-iq-rudp``.
    The directory is created lazily on first write.
    """

    def __init__(self, root: str | os.PathLike | None = None):
        self.root = pathlib.Path(root) if root is not None else _default_root()
        self.hits = 0
        self.misses = 0
        self._write_disabled = False

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.pkl"

    def get(self, key: str, expect: type | tuple[type, ...] | None = None
            ) -> Any | None:
        """Stored value for ``key``, or None on miss/corruption.

        ``expect`` names the type(s) the payload must be an instance of;
        anything else -- a stale or hostile file that happens to unpickle
        -- is treated exactly like corruption: a miss, never returned.
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            self.misses += 1
            return None
        if expect is not None and not isinstance(value, expect):
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` (atomic replace).

        Storage-level failures (read-only directory, disk full -- any
        ``OSError``) must not kill the sweep that was merely trying to
        memoise: the first one degrades this cache to read-only with a
        single warning and every later ``put`` is a silent no-op.
        Serialisation errors (unpicklable payloads) still raise -- they
        are a caller bug, not an environment condition.
        """
        if self._write_disabled:
            return
        path = self.path_for(key)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        except OSError as exc:
            self._disable_writes(exc)
            return
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException as exc:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            if isinstance(exc, OSError):
                self._disable_writes(exc)
                return
            raise

    def _disable_writes(self, exc: OSError) -> None:
        self._write_disabled = True
        warnings.warn(
            f"results cache at {self.root} is not writable ({exc}); "
            "continuing without caching", RuntimeWarning, stacklevel=4)


def default_cache() -> ResultsCache:
    """A cache on the default (environment-configured) directory."""
    return ResultsCache()


def detach_tree(obj: Any) -> Any:
    """Recursively ``detach()`` every scenario result in a container.

    Experiment helpers return results nested in dicts/lists/tuples
    (e.g. Table 6's ``{rate: {row: result}}``); this walks those shapes so
    an arbitrary experiment payload can be pickled.  Returns ``obj``.
    """
    detach = getattr(obj, "detach", None)
    if callable(detach):
        detach()
    elif isinstance(obj, dict):
        for v in obj.values():
            detach_tree(v)
    elif isinstance(obj, (list, tuple)):
        for v in obj:
            detach_tree(v)
    return obj


def memo(key: str, fn: Callable[[], Any], *,
         cache: ResultsCache | None = None) -> Any:
    """Persistent memoisation of a named experiment run.

    The effective key mixes the caller's name with the code salt, so cached
    artifacts survive across sessions but never across code edits.  With
    the cache disabled (``REPRO_NO_CACHE``) this is just ``fn()``.
    """
    if not cache_enabled():
        return fn()
    if cache is None:
        cache = default_cache()
    digest = hashlib.sha256(
        (code_salt() + "\0" + key).encode()).hexdigest()[:40]
    value = cache.get(digest)
    if value is None:
        value = detach_tree(fn())
        try:
            cache.put(digest, value)
        except (pickle.PicklingError, TypeError, AttributeError):
            # Unpicklable payloads simply skip persistence.
            pass
    return value
