"""The structured invariant-violation error.

A violation is a *simulation correctness* failure, not a user error: some
conservation law or monotonicity property the simulator promises stopped
holding mid-run.  The exception therefore carries everything a batch
report needs to triage it without re-running: which named invariant broke,
at what simulation time, in which scenario, and the counter snapshot that
contradicts the law.

Violations raised inside a worker process cross back to the parent as a
``FailedResult`` (see :mod:`repro.runner`), so a single insane scenario in
a thousand-run sweep surfaces as one failed row instead of a dead batch.
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = ["InvariantViolation"]


def _rebuild(name, message, sim_time, scenario, counters):
    return InvariantViolation(name, message, sim_time=sim_time,
                              scenario=scenario, counters=counters)


class InvariantViolation(RuntimeError):
    """A runtime invariant check failed.

    Parameters
    ----------
    name : the invariant's stable identifier (e.g. ``"queue-conservation"``,
        ``"time-monotonicity"``, ``"cwnd-bounds"``).
    message : human-readable statement of what stopped holding.
    sim_time : virtual time at which the check ran.
    scenario : short scenario description (transport/workload/seed).
    counters : snapshot of the counters that witness the violation.
    """

    def __init__(self, name: str, message: str = "", *,
                 sim_time: float = 0.0, scenario: str = "",
                 counters: Mapping[str, Any] | None = None):
        self.name = name
        self.message = message
        self.sim_time = float(sim_time)
        self.scenario = scenario
        self.counters = dict(counters) if counters else {}
        detail = f"[{name}] t={self.sim_time:.6f}s"
        if scenario:
            detail += f" ({scenario})"
        detail += f": {message}"
        if self.counters:
            detail += " | " + " ".join(
                f"{k}={v}" for k, v in sorted(self.counters.items()))
        super().__init__(detail)

    # Custom constructor signature: the default exception reduce would try
    # ``InvariantViolation(str(self))`` on unpickle and fail, so spell out
    # the rebuild (violations cross process boundaries in worker batches).
    def __reduce__(self):
        return (_rebuild, (self.name, self.message, self.sim_time,
                           self.scenario, self.counters))
