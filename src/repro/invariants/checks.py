"""Periodic runtime invariant checker.

The checker is a passive observer scheduled on the simulation clock: every
``period`` seconds of virtual time it reads counters from the components it
watches and raises :class:`InvariantViolation` the moment a conservation
law, bound or monotonicity property stops holding.  Checks *never mutate*
-- every hook they call (``conservation_violation``, ``audit``,
``invariant_violations``, ``consistency_violation``) is a pure counter
read -- so an armed run produces bit-identical summaries to a disarmed
one; the only difference is that insanity is caught at the tick where it
appears instead of corrupting a table silently.

Laws enforced (see ISSUE 4):

* **engine**: scheduler counter sanity and heap-head time monotonicity
  (plus the per-event check in :class:`CheckedSimulator`).
* **link/queue**: datagram conservation -- every arrival is queued,
  departed, dropped, or flushed -- and serializer accounting.
* **transport**: ``snd_una <= snd_nxt`` with both non-decreasing over
  time, inflight == window occupancy, cwnd within [min_cwnd, max_cwnd],
  ``rcv_nxt`` non-decreasing, reorder buffer strictly above the ACK point.
* **middleware**: delivery-log alignment, non-decreasing delivery times,
  causality (delivery never precedes creation), and delivered-packet
  agreement between the transport receiver and the log.

Check events are scheduled at a large positive priority so at any instant
they observe the state *after* all real work at that instant -- mid-instant
transients (e.g. a popped-but-not-yet-counted packet) are not violations.
"""

from __future__ import annotations

from typing import Any

from .violation import InvariantViolation

__all__ = ["InvariantChecker", "CHECK_PRIORITY"]

#: Scheduling priority for check ticks: far above any component's, so a
#: tick always observes post-quiescent state for its instant.
CHECK_PRIORITY = 1 << 20


class InvariantChecker:
    """Arms periodic invariant sweeps over watched components.

    Usage::

        checker = InvariantChecker(sim, scenario="iq/greedy/seed=1")
        checker.watch_network(net)          # Dumbbell
        checker.watch_flow(conn, log)       # connection (+ delivery log)
        checker.arm()
        ...  # run the simulation
        checker.final()                     # one last sweep
    """

    def __init__(self, sim, *, period: float = 0.25, scenario: str = ""):
        if period <= 0:
            raise ValueError("check period must be positive")
        self.sim = sim
        self.period = period
        self.scenario = scenario
        self.checks_run = 0
        self._links: list[Any] = []
        self._flows: list[tuple[Any, Any | None]] = []  # (conn, log|None)
        # Monotonic sequence counters: label -> last observed value.
        self._mono: dict[str, int] = {}
        # Per-log scan cursor so consistency checks stay incremental.
        self._log_cursor: list[int] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def watch_network(self, net) -> None:
        """Watch a dumbbell's bottleneck links (both directions)."""
        self._links.extend((net.forward, net.backward))

    def watch_link(self, link) -> None:
        self._links.append(link)

    def watch_flow(self, conn, log=None) -> None:
        """Watch a windowed connection and (optionally) its delivery log.

        When ``log`` is given the checker also enforces that the transport
        receiver's delivered-packet count equals the log length -- the
        frame-accounting handshake between transport and middleware.
        """
        self._flows.append((conn, log))
        self._log_cursor.append(0)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Start the periodic sweep (call after topology construction)."""
        self.sim.schedule(self.period, self._tick, priority=CHECK_PRIORITY)

    def _tick(self) -> None:
        self.check_all()
        self.sim.schedule(self.period, self._tick, priority=CHECK_PRIORITY)

    def final(self) -> None:
        """One last sweep after the run loop exits (end-state laws such as
        completion consistency bind tightest here)."""
        self.check_all()

    # ------------------------------------------------------------------
    # The sweep
    # ------------------------------------------------------------------
    def _fail(self, name: str, message: str, **counters) -> None:
        fl = getattr(self.sim, "flight", None)
        if fl is not None:
            fl.note("run", "VIOLATION", name=name, message=message,
                    checks_run=self.checks_run, **counters)
        raise InvariantViolation(name, message, sim_time=self.sim.now,
                                 scenario=self.scenario, counters=counters)

    def _check_mono(self, label: str, value: int) -> None:
        prev = self._mono.get(label)
        if prev is not None and value < prev:
            self._fail("sequence-monotonicity",
                       f"{label} regressed", previous=prev, current=value)
        self._mono[label] = value

    def check_all(self) -> None:
        """Run every registered check once; raises on the first violation."""
        self.checks_run += 1

        audit = getattr(self.sim, "audit", None)
        if audit is not None:
            bad = audit()
            if bad is not None:
                self._fail("engine-audit", bad,
                           pending=self.sim.pending())

        for link in self._links:
            bad = link.queue.conservation_violation()
            if bad is not None:
                st = link.queue.stats
                self._fail("queue-conservation", f"{link.name}: {bad}",
                           arrivals=st.arrivals, departures=st.departures,
                           drops=st.drops, flushed=st.flushed,
                           queued=len(link.queue))
            bad = link.accounting_violation()
            if bad is not None:
                self._fail("link-accounting", f"{link.name}: {bad}",
                           packets_sent=link.packets_sent,
                           lost_wire=link.packets_lost_wire)

        for idx, (conn, log) in enumerate(self._flows):
            snd = conn.sender
            rcv = conn.receiver
            for bad in snd.invariant_violations():
                self._fail("sender-state", bad,
                           snd_una=snd.snd_una, snd_nxt=snd.snd_nxt,
                           inflight=snd.inflight, cwnd=snd.cc.cwnd)
            for bad in rcv.invariant_violations():
                self._fail("receiver-state", bad,
                           rcv_nxt=rcv.reorder.rcv_nxt,
                           buffered=len(rcv.reorder))
            fec = getattr(conn, "fec", None)
            if fec is not None:
                bad = fec.conservation_violation()
                if bad is not None:
                    self._fail("fec-conservation", bad,
                               repairs_sent=fec.repairs_sent,
                               recovered=fec.recovered,
                               unrecoverable=fec.unrecoverable,
                               repairs_unused=fec.repairs_unused,
                               redundancy=fec.r)
            self._check_mono(f"flow{idx}.snd_una", snd.snd_una)
            self._check_mono(f"flow{idx}.snd_nxt", snd.snd_nxt)
            self._check_mono(f"flow{idx}.rcv_nxt", rcv.reorder.rcv_nxt)
            if log is not None:
                bad = log.consistency_violation(self._log_cursor[idx])
                if bad is not None:
                    self._fail("delivery-log", bad, entries=len(log))
                self._log_cursor[idx] = len(log)
                if rcv.stats.delivered_packets != len(log):
                    self._fail(
                        "frame-accounting",
                        "transport delivered-packet count disagrees with "
                        "the middleware delivery log",
                        delivered_packets=rcv.stats.delivered_packets,
                        log_entries=len(log))
