"""Runtime invariant checking (``repro.invariants``).

Cheap, read-only correctness checks armed per scenario via
``ScenarioConfig(invariants=True)`` (or the ``REPRO_INVARIANTS``
environment variable).  Armed runs execute on a :class:`CheckedSimulator`
and carry an :class:`InvariantChecker` sweeping conservation laws,
sequence monotonicity, window bounds and delivery-log consistency every
simulated quarter second; any breach raises a structured
:class:`InvariantViolation` that the resilient runner captures as a
``FailedResult`` row instead of a dead batch.

Disarmed runs are byte-identical to the stock engine (the checks live in a
subclass, not a branch), so the feature costs nothing unless requested --
gated by ``benchmarks/bench_invariant_overhead.py``.
"""

from .checks import CHECK_PRIORITY, InvariantChecker
from .engine import CheckedSimulator
from .violation import InvariantViolation

__all__ = ["InvariantViolation", "InvariantChecker", "CheckedSimulator",
           "CHECK_PRIORITY"]
