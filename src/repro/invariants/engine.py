"""A Simulator subclass that verifies event-time monotonicity as it runs.

The stock :class:`~repro.sim.engine.Simulator` trusts its heap: the hot
loop is hand-flattened and adding even one comparison per event costs
measurable throughput on every experiment.  Arming invariants therefore
swaps in this subclass instead of branching inside the stock loop -- the
disarmed engine stays byte-identical, so disarmed overhead is exactly
zero by construction (the ``bench_invariant_overhead`` gate measures the
residual config-flag cost).

The checked loop verifies, for every fired event, that the heap never
hands back an event from the past -- the one engine property everything
else (RTT samples, queueing delays, metric periods) silently assumes.
"""

from __future__ import annotations

from heapq import heappop

from ..sim.engine import SimulationError, Simulator
from .violation import InvariantViolation

__all__ = ["CheckedSimulator"]

#: Tolerance for float time comparisons (engine times are sums of small
#: delays; exact equality is the norm, this absorbs representation noise).
_TIME_EPS = 1e-9


class CheckedSimulator(Simulator):
    """Drop-in :class:`Simulator` whose run loop audits the clock.

    Scheduling, cancellation and compaction are inherited unchanged, so a
    checked run executes the exact same event sequence as an unchecked
    one -- the override only *observes*.
    """

    def __init__(self) -> None:
        super().__init__()
        #: Events whose firing time was verified (introspection for tests).
        self.events_checked = 0

    def run(self, until: float | None = None, max_events: int | None = None
            ) -> int:
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        heap = self._heap
        pop = heappop
        fired = 0
        try:
            while heap:
                if self._stopped:
                    break
                if max_events is not None and fired >= max_events:
                    break
                entry = heap[0]
                ev = entry[3]
                if not ev._alive:
                    pop(heap)
                    self._dead -= 1
                    continue
                time = entry[0]
                if until is not None and time > until:
                    break
                if time < self._now - _TIME_EPS:
                    raise InvariantViolation(
                        "time-monotonicity",
                        "event fired out of order: the heap returned an "
                        "event scheduled in the past",
                        sim_time=self._now,
                        counters={"event_time": time, "now": self._now,
                                  "heap_size": len(heap)})
                pop(heap)
                self._now = time
                ev._alive = False
                ev.fn(*ev.args)
                fired += 1
                self.events_checked += 1
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return fired
