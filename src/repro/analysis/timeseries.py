"""Time-series utilities for the figure benches.

Figures 2/3 (per-packet jitter) and Figure 4 (improvement vs congestion)
are regenerated as ASCII charts plus machine-readable arrays; the chart is
deliberately small -- it exists to show the *shape* (where the cross traffic
bites, which curve is lower/flatter), not publication graphics.
"""

from __future__ import annotations

import numpy as np

__all__ = ["bin_series", "ascii_chart", "running_mean", "series_xy",
           "first_divergence"]


def series_xy(series) -> tuple[np.ndarray, np.ndarray]:
    """(times, means) arrays for a telemetry :class:`~repro.obs.telemetry
    .Series` -- adapter so the figure benches' charting works on sampled
    telemetry as well as raw delivery logs.  Empty buckets are dropped."""
    times, means = [], []
    for t, m in zip(series.times(), series.means()):
        if m is not None:
            times.append(t)
            means.append(m)
    return np.asarray(times, dtype=np.float64), np.asarray(means,
                                                           dtype=np.float64)


def first_divergence(a, b, *, eps: float = 0.0) -> dict | None:
    """First bucket where two telemetry series disagree beyond ``eps``.

    Compares bucket means (missing-on-one-side counts as divergence) after
    aligning on bucket width; series whose widths differ -- adaptive
    downsampling merged one further than the other -- are reported as
    diverged at bucket 0.  Returns ``{"bucket", "time_s", "a", "b"}`` or
    None when the series agree everywhere.
    """
    if a.bucket_s != b.bucket_s:
        return {"bucket": 0, "time_s": 0.0, "a": f"bucket_s={a.bucket_s}",
                "b": f"bucket_s={b.bucket_s}"}
    ma, mb = a.means(), b.means()
    for i in range(max(len(ma), len(mb))):
        va = ma[i] if i < len(ma) else None
        vb = mb[i] if i < len(mb) else None
        if va is None and vb is None:
            continue
        if va is None or vb is None or abs(va - vb) > eps:
            return {"bucket": i, "time_s": (i + 0.5) * a.bucket_s,
                    "a": va, "b": vb}
    return None


def running_mean(values: np.ndarray, window: int) -> np.ndarray:
    """Simple moving average (edge-truncated) for smoothing noisy series."""
    v = np.asarray(values, dtype=np.float64)
    if window <= 1 or v.size == 0:
        return v
    kernel = np.ones(min(window, v.size)) / min(window, v.size)
    return np.convolve(v, kernel, mode="same")


def bin_series(x: np.ndarray, y: np.ndarray, bins: int
               ) -> tuple[np.ndarray, np.ndarray]:
    """Average ``y`` into ``bins`` equal-width buckets of ``x``.

    Returns (bin centers, bin means); empty buckets yield NaN means, which
    the chart renderer skips.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size == 0:
        return np.empty(0), np.empty(0)
    edges = np.linspace(x.min(), x.max(), bins + 1)
    idx = np.clip(np.digitize(x, edges) - 1, 0, bins - 1)
    sums = np.bincount(idx, weights=y, minlength=bins)
    counts = np.bincount(idx, minlength=bins)
    with np.errstate(invalid="ignore"):
        means = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    centers = (edges[:-1] + edges[1:]) / 2.0
    return centers, means


def ascii_chart(series: dict[str, tuple[np.ndarray, np.ndarray]], *,
                width: int = 72, height: int = 16,
                title: str = "", ylabel: str = "") -> str:
    """Render one or more (x, y) series as an ASCII chart.

    Each series gets a marker character in registration order
    (``*``, ``o``, ``+``, ``x``).  Axes are annotated with min/max.
    """
    markers = "*o+x#@"
    cleaned = {}
    for name, (x, y) in series.items():
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        keep = np.isfinite(x) & np.isfinite(y)
        if keep.any():
            cleaned[name] = (x[keep], y[keep])
    if not cleaned:
        return f"{title}\n(no data)"

    all_x = np.concatenate([x for x, _ in cleaned.values()])
    all_y = np.concatenate([y for _, y in cleaned.values()])
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for k, (name, (x, y)) in enumerate(cleaned.items()):
        m = markers[k % len(markers)]
        cols = np.clip(((x - x_lo) / (x_hi - x_lo) * (width - 1)).astype(int),
                       0, width - 1)
        rows = np.clip(((y - y_lo) / (y_hi - y_lo) * (height - 1)).astype(int),
                       0, height - 1)
        for c, r in zip(cols, rows):
            grid[height - 1 - r][c] = m

    lines = []
    if title:
        lines.append(title)
    legend = "  ".join(f"{markers[k % len(markers)]}={name}"
                       for k, name in enumerate(cleaned))
    lines.append(legend)
    lines.append(f"{y_hi:.4g} {ylabel}")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append(f"{y_lo:.4g} +" + "-" * (width - 1))
    lines.append(f"x: {x_lo:.4g} .. {x_hi:.4g}")
    return "\n".join(lines)
