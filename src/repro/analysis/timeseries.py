"""Time-series utilities for the figure benches.

Figures 2/3 (per-packet jitter) and Figure 4 (improvement vs congestion)
are regenerated as ASCII charts plus machine-readable arrays; the chart is
deliberately small -- it exists to show the *shape* (where the cross traffic
bites, which curve is lower/flatter), not publication graphics.
"""

from __future__ import annotations

import numpy as np

__all__ = ["bin_series", "ascii_chart", "running_mean"]


def running_mean(values: np.ndarray, window: int) -> np.ndarray:
    """Simple moving average (edge-truncated) for smoothing noisy series."""
    v = np.asarray(values, dtype=np.float64)
    if window <= 1 or v.size == 0:
        return v
    kernel = np.ones(min(window, v.size)) / min(window, v.size)
    return np.convolve(v, kernel, mode="same")


def bin_series(x: np.ndarray, y: np.ndarray, bins: int
               ) -> tuple[np.ndarray, np.ndarray]:
    """Average ``y`` into ``bins`` equal-width buckets of ``x``.

    Returns (bin centers, bin means); empty buckets yield NaN means, which
    the chart renderer skips.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size == 0:
        return np.empty(0), np.empty(0)
    edges = np.linspace(x.min(), x.max(), bins + 1)
    idx = np.clip(np.digitize(x, edges) - 1, 0, bins - 1)
    sums = np.bincount(idx, weights=y, minlength=bins)
    counts = np.bincount(idx, minlength=bins)
    with np.errstate(invalid="ignore"):
        means = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    centers = (edges[:-1] + edges[1:]) / 2.0
    return centers, means


def ascii_chart(series: dict[str, tuple[np.ndarray, np.ndarray]], *,
                width: int = 72, height: int = 16,
                title: str = "", ylabel: str = "") -> str:
    """Render one or more (x, y) series as an ASCII chart.

    Each series gets a marker character in registration order
    (``*``, ``o``, ``+``, ``x``).  Axes are annotated with min/max.
    """
    markers = "*o+x#@"
    cleaned = {}
    for name, (x, y) in series.items():
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        keep = np.isfinite(x) & np.isfinite(y)
        if keep.any():
            cleaned[name] = (x[keep], y[keep])
    if not cleaned:
        return f"{title}\n(no data)"

    all_x = np.concatenate([x for x, _ in cleaned.values()])
    all_y = np.concatenate([y for _, y in cleaned.values()])
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for k, (name, (x, y)) in enumerate(cleaned.items()):
        m = markers[k % len(markers)]
        cols = np.clip(((x - x_lo) / (x_hi - x_lo) * (width - 1)).astype(int),
                       0, width - 1)
        rows = np.clip(((y - y_lo) / (y_hi - y_lo) * (height - 1)).astype(int),
                       0, height - 1)
        for c, r in zip(cols, rows):
            grid[height - 1 - r][c] = m

    lines = []
    if title:
        lines.append(title)
    legend = "  ".join(f"{markers[k % len(markers)]}={name}"
                       for k, name in enumerate(cleaned))
    lines.append(legend)
    lines.append(f"{y_hi:.4g} {ylabel}")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append(f"{y_lo:.4g} +" + "-" * (width - 1))
    lines.append(f"x: {x_lo:.4g} .. {x_hi:.4g}")
    return "\n".join(lines)
