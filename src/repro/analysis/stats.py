"""Vectorised metric computation for the experiment tables.

All heavy computation is NumPy on arrays extracted from
:class:`~repro.middleware.receiver.DeliveryLog`; nothing here touches the
simulator.  The vocabulary follows the paper's tables:

* *inter-arrival* -- mean gap between consecutive message completions;
* *jitter* -- standard deviation of those gaps ("the jitter (deviation) of
  packet inter-arrival");
* *delay* -- mean inter-arrival at datagram granularity (Tables 3-8 report
  it in milliseconds; Table 3's text defines tagged delay as "average
  inter-arrival of tagged messages");
* *throughput* -- delivered payload bytes over the flow duration.
"""

from __future__ import annotations

import numpy as np

from ..middleware.receiver import DeliveryLog

__all__ = ["interarrival_stats", "flow_summary", "improvement"]


def interarrival_stats(times: np.ndarray) -> tuple[float, float]:
    """(mean, std) of the gaps between consecutive times; (0,0) when fewer
    than two samples exist."""
    t = np.asarray(times, dtype=np.float64)
    if t.size < 2:
        return 0.0, 0.0
    gaps = np.diff(t)
    return float(gaps.mean()), float(gaps.std())


def flow_summary(log: DeliveryLog, *, submitted_datagrams: int | None = None,
                 start_time: float = 0.0) -> dict[str, float]:
    """The standard metric bundle every experiment table draws from.

    Keys
    ----
    duration_s            time to finish (last delivery minus ``start_time``)
    throughput_kBps       delivered payload KB/s over the duration
    msg_interarrival_s    mean gap between message (frame) completions
    msg_jitter_s          std of those gaps
    delay_ms / jitter_ms  datagram-level inter-arrival mean/std, in ms
    tagged_delay_ms / tagged_jitter_ms   same, tagged datagrams only
    owd_ms                mean one-way (submit-to-deliver) delay, ms
    pct_received          delivered datagrams / submitted datagrams * 100
    delivered_datagrams, delivered_bytes  raw counts
    frames_completed      distinct frames with >= 1 delivered segment
                          (see :meth:`DeliveryLog.frames_delivered`)
    goodput_fps           frames_completed per second of flow duration --
                          the delivered-frame goodput the dynamics sweeps
                          compare transports on
    """
    duration = max(log.duration - start_time, 0.0)
    frame_times = log.message_times()
    frames_done = log.frames_delivered()
    msg_mean, msg_std = interarrival_stats(frame_times)
    pkt_mean, pkt_std = interarrival_stats(log.times)
    tag_mean, tag_std = interarrival_stats(log.tagged_times())
    owd = log.one_way_delays()
    summary = {
        "duration_s": duration,
        "throughput_kBps": (log.total_bytes / 1e3 / duration
                            if duration > 0 else 0.0),
        "msg_interarrival_s": msg_mean,
        "msg_jitter_s": msg_std,
        "delay_ms": pkt_mean * 1e3,
        "jitter_ms": pkt_std * 1e3,
        "tagged_delay_ms": tag_mean * 1e3,
        "tagged_jitter_ms": tag_std * 1e3,
        "owd_ms": float(owd.mean()) * 1e3 if owd.size else 0.0,
        "delivered_datagrams": float(len(log)),
        "delivered_bytes": float(log.total_bytes),
        "frames_completed": float(frames_done),
        "goodput_fps": frames_done / duration if duration > 0 else 0.0,
    }
    if submitted_datagrams:
        summary["pct_received"] = 100.0 * len(log) / submitted_datagrams
    else:
        summary["pct_received"] = 100.0 if len(log) else 0.0
    return summary


def improvement(coordinated: float, uncoordinated: float, *,
                lower_is_better: bool = False) -> float:
    """Percent improvement of the coordinated value over the baseline.

    Positive means the coordinated scheme is better.  With
    ``lower_is_better`` (durations, delays, jitters) the sign flips
    accordingly.
    """
    if uncoordinated == 0:
        return 0.0
    rel = (coordinated - uncoordinated) / abs(uncoordinated)
    return -100.0 * rel if lower_is_better else 100.0 * rel
