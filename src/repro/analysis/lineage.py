"""Causal frame-lineage analysis over ``ScenarioResult.spans``.

The span recorder (:mod:`repro.obs.spans`) captures the raw chain --
frames, datagram attempts, drops, coordination episodes -- and this module
turns it into the artefacts ``repro lineage`` prints:

* :func:`frame_accounting` -- outcome counts plus the reconciliation
  anchor (``frames_with_delivery`` must equal the delivery log's frame
  count exactly),
* :func:`decision_chain` -- every attribute exchange paired with the
  coordination action(s) it caused, the paper's Table 3 causality made
  checkable per run,
* :func:`render_lineage` / :func:`render_frame_lineage` -- the text
  reports, including the per-frame latency decomposition
  (serialization / queueing / propagation / retransmission-wait).
"""

from __future__ import annotations

from typing import Any, Mapping

from .tables import render_table

__all__ = ["frame_accounting", "decision_chain", "render_lineage",
           "render_frame_lineage"]


def frame_accounting(spans: Mapping[str, Any]) -> dict[str, Any]:
    """Frame/segment outcome bookkeeping for one lineage artifact.

    ``frames_with_delivery`` is the number that must reconcile exactly
    with ``DeliveryLog.frames_delivered()`` -- both count a frame once it
    has at least one delivered payload segment.
    """
    seg_fates: dict[str, int] = {}
    for fr in spans["frames"]:
        for s in fr["segments"]:
            seg_fates[s["fate"]] = seg_fates.get(s["fate"], 0) + 1
    return {
        "frames": len(spans["frames"]),
        "outcomes": dict(spans["counts"]),
        "frames_with_delivery": spans["frames_with_delivery"],
        "segment_fates": dict(sorted(seg_fates.items())),
    }


def decision_chain(spans: Mapping[str, Any]) -> dict[str, Any]:
    """Pair each coordination episode (attribute exchange) with the
    action(s) it caused, plus the spontaneous (transport-initiated)
    stall degrade/recover actions."""
    by_ep: dict[int, list[dict[str, Any]]] = {}
    spontaneous: list[dict[str, Any]] = []
    for act in spans["actions"]:
        ep = act.get("episode")
        if ep is None:
            spontaneous.append(act)
        else:
            by_ep.setdefault(ep, []).append(act)
    chain = [{"episode": ep, "actions": by_ep.get(ep["id"], [])}
             for ep in spans["episodes"]]
    return {"chain": chain, "spontaneous": spontaneous}


def _fmt_attrs(attrs: Mapping[str, Any]) -> str:
    return " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))


def _fmt_action(act: Mapping[str, Any]) -> str:
    extra = " ".join(f"{k}={round(v, 6) if isinstance(v, float) else v}"
                     for k, v in sorted(act.items())
                     if k not in ("t", "action", "episode"))
    return act["action"] + (f" [{extra}]" if extra else "")


def _latency_cells(lat: Mapping[str, float] | None) -> list[str]:
    if lat is None:
        return ["-"] * 5
    return [f"{lat[k] * 1e3:.2f}"
            for k in ("total_s", "serialization_s", "queueing_s",
                      "propagation_s", "retx_wait_s")]


def render_lineage(spans: Mapping[str, Any], *,
                   limit: int | None = 20) -> str:
    """Full lineage report: accounting, decision chain, frame table.

    The frame table shows every non-delivered frame plus the newest
    ``limit`` frames (where the endgame lives); pass ``limit=None`` for
    all of them.
    """
    acct = frame_accounting(spans)
    parts = [f"Causal lineage: {spans.get('scenario', '?')} "
             f"(flow {spans.get('flow')})"]
    outcome_txt = " ".join(f"{k}={v}" for k, v in acct["outcomes"].items()
                           if v)
    parts.append(f"frames: {acct['frames']} submitted, "
                 f"{acct['frames_with_delivery']} with delivery "
                 f"({outcome_txt or 'none'})")
    fate_txt = " ".join(f"{k}={v}"
                        for k, v in acct["segment_fates"].items())
    parts.append(f"segments: {fate_txt or 'none'}")

    chain = decision_chain(spans)
    parts.append("")
    parts.append(f"Decision chain ({len(chain['chain'])} attribute "
                 f"exchanges, {len(chain['spontaneous'])} "
                 f"transport-initiated actions)")
    rows = []
    for link in chain["chain"]:
        ep = link["episode"]
        acts = link["actions"]
        rows.append([ep["id"], f"{ep['t']:.3f}", _fmt_attrs(ep["attrs"]),
                     "; ".join(_fmt_action(a) for a in acts)
                     or "(consumed, no action)"])
    for act in chain["spontaneous"]:
        rows.append(["-", f"{act['t']:.3f}", "(transport-initiated)",
                     _fmt_action(act)])
    if rows:
        parts.append(render_table(
            ["ep", "t", "attributes", "coordination action"], rows))
    else:
        parts.append("  (no coordination episodes)")

    frames = spans["frames"]
    shown = frames
    if limit is not None and len(frames) > limit:
        # Non-delivered frames are the interesting ones; always keep them.
        keep = [f for f in frames if f["outcome"] != "delivered"]
        tail = [f for f in frames[-limit:] if f["outcome"] == "delivered"]
        shown = sorted(keep + tail, key=lambda f: f["frame_id"])
    rows = []
    for fr in shown:
        n_attempts = sum(len(s["attempts"]) for s in fr["segments"])
        n_drops = sum(len(s["drops"]) for s in fr["segments"])
        rows.append([fr["frame_id"], f"{fr['t_submit']:.3f}", fr["bytes"],
                     len(fr["segments"]), n_attempts, n_drops,
                     fr["outcome"], *_latency_cells(fr["latency"])])
    parts.append("")
    parts.append(render_table(
        ["frame", "t_submit", "bytes", "segs", "tx", "drops", "outcome",
         "total_ms", "ser_ms", "queue_ms", "prop_ms", "retx_ms"],
        rows, title=f"Frames ({len(shown)}/{len(frames)} shown)"))
    return "\n".join(parts)


def render_frame_lineage(spans: Mapping[str, Any], frame_id: int) -> str:
    """Segment-level story of one frame: every transmission attempt, drop
    and final fate, with the frame's latency decomposition."""
    fr = next((f for f in spans["frames"] if f["frame_id"] == frame_id),
              None)
    if fr is None:
        raise ValueError(f"frame {frame_id} not in lineage (frames "
                         f"0..{len(spans['frames']) - 1} recorded)")
    parts = [f"Frame {frame_id} [{fr['outcome']}]: {fr['bytes']} B in "
             f"{len(fr['segments'])} segment(s), submitted "
             f"t={fr['t_submit']:.6f}s"
             + (f", done t={fr['t_done']:.6f}s" if fr["t_done"] is not None
                else "")]
    lat = fr["latency"]
    if lat is not None:
        parts.append(
            f"latency: total={lat['total_s'] * 1e3:.2f}ms = "
            f"serialization {lat['serialization_s'] * 1e3:.2f} + "
            f"queueing {lat['queueing_s'] * 1e3:.2f} + "
            f"propagation {lat['propagation_s'] * 1e3:.2f} + "
            f"retx-wait {lat['retx_wait_s'] * 1e3:.2f}")
    for i, seg in enumerate(fr["segments"]):
        flags = "".join(f for f, on in (("M", seg["marked"]),
                                        ("T", seg["tagged"]),
                                        ("L", seg["last"])) if on)
        head = (f"  seg {i} seq={seg['seq']} size={seg['size']}"
                + (f" [{flags}]" if flags else "")
                + f" -> {seg['fate']}")
        if seg["t_done"] is not None:
            head += f" t={seg['t_done']:.6f}s"
        parts.append(head)
        for at in seg["attempts"]:
            parts.append(f"    {at['kind']} t={at['t']:.6f}s"
                         + (" (skip)" if at["skip"] else ""))
        for dr in seg["drops"]:
            parts.append(f"    drop t={dr['t']:.6f}s link={dr['link']} "
                         f"kind={dr['kind']}")
        if not seg["attempts"]:
            parts.append("    (never transmitted)")
    return "\n".join(parts)
