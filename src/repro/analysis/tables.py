"""Plain-text table rendering for the benchmark harness.

Every bench regenerates one paper table/figure and prints it in the paper's
row/column layout next to the paper's published numbers, so shape
comparisons (who wins, by roughly what factor) are one glance away.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["render_table", "render_comparison", "render_grouped", "fmt"]


def fmt(value: Any, digits: int = 3) -> str:
    """Compact numeric formatting: trims trailing zeros, keeps ints whole."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:.0f}"
    text = f"{value:.{digits}g}"
    return text


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str = "") -> str:
    """Monospace table with column auto-sizing."""
    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def render_grouped(title: str, headers: Sequence[str],
                   groups: "dict[str, Sequence[Sequence[Any]]]",
                   group_header: str = "scenario") -> str:
    """One table with a labelled block per group (the dynamics sweeps'
    layout): the group name appears on its block's first row only."""
    rows: list[list[Any]] = []
    for name, group_rows in groups.items():
        for i, row in enumerate(group_rows):
            rows.append([name if i == 0 else "", *row])
    return render_table((group_header, *headers), rows, title=title)


def render_comparison(title: str, headers: Sequence[str],
                      paper_rows: Sequence[Sequence[Any]],
                      measured_rows: Sequence[Sequence[Any]]) -> str:
    """Paper-vs-measured block: the published table followed by ours."""
    parts = [
        render_table(headers, paper_rows, title=f"{title} -- paper"),
        "",
        render_table(headers, measured_rows, title=f"{title} -- measured"),
    ]
    return "\n".join(parts)
