"""Metric computation and result presentation."""

from .lineage import (decision_chain, frame_accounting,
                      render_frame_lineage, render_lineage)
from .stats import flow_summary, improvement, interarrival_stats
from .tables import fmt, render_comparison, render_table
from .timeseries import ascii_chart, bin_series, running_mean

__all__ = [
    "flow_summary", "improvement", "interarrival_stats",
    "fmt", "render_comparison", "render_table",
    "ascii_chart", "bin_series", "running_mean",
    "frame_accounting", "decision_chain", "render_lineage",
    "render_frame_lineage",
]
