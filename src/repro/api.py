"""Stable public API facade.

Everything a library user needs for "configure a scenario, run it, look at
the result" lives here, decoupled from the internal module layout (which
this package is free to keep refactoring):

    from repro.api import Scenario, run, sweep, load_result

    res = run(Scenario(transport="iq", workload="greedy", cbr_bps=16e6))
    print(res.summary["duration_s"])

Campaigns scale the same facade up: :func:`load_campaign` turns a spec
(TOML/YAML/JSON/dict: template x axes x seeds) into a
:class:`~repro.campaign.Campaign`, and :func:`run_campaign` executes it --
in-memory, or across worker processes/hosts splitting a shared campaign
directory via claim/lease work stealing::

    run = run_campaign("spec.toml", dir="camp/", workers=4)
    print(run.report().render())

:class:`Scenario` is a keyword-only, validated wrapper over the internal
:class:`~repro.experiments.common.ScenarioConfig`; unknown fields fail at
construction with a close-match suggestion instead of silently configuring
nothing.  :func:`run` and :func:`sweep` go through the batch runner, so
they share its persistent results cache, process-pool fan-out and JSONL
tracing.  :func:`load_result` reads a pickled result back (the cache's
``.pkl`` format, or anything ``pickle.dump``-ed from a ``ScenarioResult``).
"""

from __future__ import annotations

import os
import pickle
import warnings
from typing import Any, Iterable, Mapping

from .experiments.common import ScenarioConfig, ScenarioResult
from .faults import FaultSchedule  # noqa: F401  (re-export: schedules are config)
from .invariants import InvariantViolation  # noqa: F401  (re-export)
from .obs.telemetry import TelemetryConfig  # noqa: F401  (re-export: config)
from .runner.failures import (  # noqa: F401  (re-export: resilient sweeps)
    BatchExecutionError, FailedResult)
from .runner.hashing import callable_token

__all__ = ["Scenario", "ScenarioResult", "FaultSchedule", "TelemetryConfig",
           "FailedResult", "BatchExecutionError", "InvariantViolation",
           "run", "sweep", "load_result",
           "Campaign", "run_campaign", "load_campaign"]


class Scenario:
    """Validated, immutable-by-convention scenario description.

    All parameters are keyword-only and map one-to-one onto
    :class:`~repro.experiments.common.ScenarioConfig` fields (``transport``,
    ``workload``, ``adaptation``, ``cbr_bps``, ``faults``, ``seed``, ...).
    Validation -- unknown-field rejection with a did-you-mean hint, value
    checks -- happens at construction, so a `Scenario` that exists can run.
    """

    __slots__ = ("config",)

    def __init__(self, **fields: Any) -> None:
        # Route through replace() on a default config: it owns the
        # unknown-key diagnostics and ScenarioConfig.__init__ the value
        # validation, so the facade adds no second validation dialect.
        object.__setattr__(self, "config", ScenarioConfig().replace(**fields))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(
            "Scenario is immutable; use scenario.replace(...) to derive a "
            "modified copy")

    def __getattr__(self, name: str) -> Any:
        try:
            return getattr(object.__getattribute__(self, "config"), name)
        except AttributeError:
            raise AttributeError(
                f"{type(self).__name__!s} has no field {name!r}") from None

    def replace(self, **fields: Any) -> "Scenario":
        """Copy with overrides; unknown fields are rejected with a hint."""
        out = object.__new__(Scenario)
        object.__setattr__(out, "config", self.config.replace(**fields))
        return out

    def __repr__(self) -> str:
        cfg = self.config
        defaults = ScenarioConfig().__dict__
        diff = {k: v for k, v in cfg.__dict__.items()
                if defaults.get(k) != v}
        inner = ", ".join(f"{k}={_field_repr(v)}" for k, v in diff.items())
        return f"Scenario({inner})"


def _field_repr(value: Any) -> str:
    """Deterministic field rendering for ``Scenario.__repr__``.

    Callable fields (adaptation factories) render as their dotted import
    name instead of ``<function ... at 0x7f...>`` -- two processes must
    print the same scenario identically (campaign cell identity depends on
    the same property via :func:`repro.campaign.cell_key`).
    """
    if callable(value):
        token = callable_token(value)
        if token is not None:
            return token
    return repr(value)


def _as_config(scenario: Scenario | ScenarioConfig) -> ScenarioConfig:
    if isinstance(scenario, Scenario):
        return scenario.config
    if isinstance(scenario, ScenarioConfig):
        return scenario
    raise TypeError(f"expected a Scenario (or ScenarioConfig), "
                    f"got {type(scenario).__name__}")


def run(scenario: Scenario | ScenarioConfig, *,
        cache=None, trace: str | None = None) -> ScenarioResult:
    """Execute one scenario and return its :class:`ScenarioResult`.

    Goes through the batch runner: results are served from the persistent
    cache when the identical configuration has run before (disable with
    ``cache=False`` or ``REPRO_NO_CACHE=1``), and ``trace`` names a
    JSONL(.gz) file to record the run's full event stream into.
    """
    from .runner import run_one
    return run_one(_as_config(scenario), cache=cache, trace=trace)


def sweep(scenarios=None, /, *, jobs: int = 1, cache=None,
          trace: str | None = None, **resilience):
    """Run a batch of scenarios, optionally across ``jobs`` worker
    processes.

    ``scenarios`` is any collection of scenarios: a mapping returns
    ``{label: ScenarioResult}``, any other iterable (list, tuple,
    generator, ...) returns a list -- both in input (insertion) order.
    Common shapes::

        results = sweep({tp: base.replace(transport=tp)
                         for tp in ("iq", "rudp", "tcp")}, jobs=4)
        results = sweep(base.replace(seed=s) for s in range(20))

    Results are deterministic for any ``jobs`` value: every scenario
    derives all randomness from its own ``seed``.

    Resilience keywords (``on_error="capture"``, ``timeout``, ``retries``,
    ``retry_backoff_s``, ``checkpoint``) pass through to
    :func:`repro.runner.run_batch`; with ``on_error="capture"`` failed
    slots hold :class:`FailedResult` rows instead of raising.

    .. deprecated::
        the old keyword form ``sweep(scenarios={...})`` still works but
        warns; pass the collection positionally.
    """
    if "scenarios" in resilience:
        if scenarios is not None:
            raise TypeError("sweep() got scenarios both positionally and "
                            "by keyword")
        scenarios = resilience.pop("scenarios")
        warnings.warn("sweep(scenarios=...) by keyword is deprecated; pass "
                      "the collection positionally: sweep({...}, jobs=...)",
                      DeprecationWarning, stacklevel=2)
    if scenarios is None:
        raise TypeError("sweep() missing required argument: a mapping or "
                        "iterable of scenarios")
    if isinstance(scenarios, (Scenario, ScenarioConfig)):
        raise TypeError("sweep() takes a collection of scenarios; for a "
                        "single scenario use run()")
    from .runner import run_batch
    if isinstance(scenarios, Mapping):
        configs = {label: _as_config(sc) for label, sc in scenarios.items()}
    else:
        if not isinstance(scenarios, Iterable):
            raise TypeError(f"sweep() needs a mapping or iterable of "
                            f"scenarios, got {type(scenarios).__name__}")
        configs = [_as_config(sc) for sc in scenarios]
    return run_batch(configs, jobs=jobs, cache=cache, trace=trace,
                     **resilience)


def load_campaign(source) -> "Any":
    """Load a :class:`~repro.campaign.Campaign` from a spec mapping or a
    ``.toml``/``.yaml``/``.json`` spec file.  Validation routes through
    :class:`Scenario`, so axis typos fail with the same did-you-mean
    dialect as every other entry point."""
    from .campaign import load_campaign as _load
    return _load(source)


def run_campaign(campaign, *, dir=None, workers: int = 1, cache=None,
                 timeout: float | None = None, retries: int = 0,
                 **kw) -> "Any":
    """Execute a campaign (a :class:`~repro.campaign.Campaign`, spec
    mapping or spec-file path); returns a
    :class:`~repro.campaign.CampaignRun`.

    With ``dir=None`` the expansion runs in-memory; with a campaign
    directory, ``workers`` processes split the cells via claim/lease work
    stealing, the run resumes after SIGINT, and additional hosts pointing
    at the same directory join in.  See :mod:`repro.campaign`.
    """
    from .campaign import run_campaign as _run
    return _run(campaign, dir=dir, workers=workers, cache=cache,
                timeout=timeout, retries=retries, **kw)


def __getattr__(name: str) -> Any:
    # Lazy re-exports: repro.campaign imports Scenario from this module,
    # so the campaign classes resolve on first touch instead of at import.
    if name in ("Campaign", "CampaignCell", "CampaignReport", "CampaignRun"):
        from . import campaign
        return getattr(campaign, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def load_result(path: str | os.PathLike) -> ScenarioResult:
    """Load a pickled :class:`ScenarioResult` (e.g. a results-cache
    ``.pkl`` entry) and type-check it.

    Raises ``FileNotFoundError`` for a missing file and ``TypeError`` when
    the pickle holds something other than a scenario result -- loading an
    arbitrary experiment artifact through this accessor is a bug, not a
    result.
    """
    with open(path, "rb") as fh:
        value = pickle.load(fh)
    if not isinstance(value, ScenarioResult):
        raise TypeError(
            f"{os.fspath(path)!r} holds {type(value).__name__}, not a "
            f"ScenarioResult; was it written by the results cache?")
    return value
