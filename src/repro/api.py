"""Stable public API facade.

Everything a library user needs for "configure a scenario, run it, look at
the result" lives here, decoupled from the internal module layout (which
this package is free to keep refactoring):

    from repro.api import Scenario, run, sweep, load_result

    res = run(Scenario(transport="iq", workload="greedy", cbr_bps=16e6))
    print(res.summary["duration_s"])

:class:`Scenario` is a keyword-only, validated wrapper over the internal
:class:`~repro.experiments.common.ScenarioConfig`; unknown fields fail at
construction with a close-match suggestion instead of silently configuring
nothing.  :func:`run` and :func:`sweep` go through the batch runner, so
they share its persistent results cache, process-pool fan-out and JSONL
tracing.  :func:`load_result` reads a pickled result back (the cache's
``.pkl`` format, or anything ``pickle.dump``-ed from a ``ScenarioResult``).
"""

from __future__ import annotations

import os
import pickle
from typing import Any, Mapping

from .experiments.common import ScenarioConfig, ScenarioResult
from .faults import FaultSchedule  # noqa: F401  (re-export: schedules are config)
from .invariants import InvariantViolation  # noqa: F401  (re-export)
from .obs.telemetry import TelemetryConfig  # noqa: F401  (re-export: config)
from .runner.failures import (  # noqa: F401  (re-export: resilient sweeps)
    BatchExecutionError, FailedResult)

__all__ = ["Scenario", "ScenarioResult", "FaultSchedule", "TelemetryConfig",
           "FailedResult", "BatchExecutionError", "InvariantViolation",
           "run", "sweep", "load_result"]


class Scenario:
    """Validated, immutable-by-convention scenario description.

    All parameters are keyword-only and map one-to-one onto
    :class:`~repro.experiments.common.ScenarioConfig` fields (``transport``,
    ``workload``, ``adaptation``, ``cbr_bps``, ``faults``, ``seed``, ...).
    Validation -- unknown-field rejection with a did-you-mean hint, value
    checks -- happens at construction, so a `Scenario` that exists can run.
    """

    __slots__ = ("config",)

    def __init__(self, **fields: Any) -> None:
        # Route through replace() on a default config: it owns the
        # unknown-key diagnostics and ScenarioConfig.__init__ the value
        # validation, so the facade adds no second validation dialect.
        object.__setattr__(self, "config", ScenarioConfig().replace(**fields))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(
            "Scenario is immutable; use scenario.replace(...) to derive a "
            "modified copy")

    def __getattr__(self, name: str) -> Any:
        try:
            return getattr(object.__getattribute__(self, "config"), name)
        except AttributeError:
            raise AttributeError(
                f"{type(self).__name__!s} has no field {name!r}") from None

    def replace(self, **fields: Any) -> "Scenario":
        """Copy with overrides; unknown fields are rejected with a hint."""
        out = object.__new__(Scenario)
        object.__setattr__(out, "config", self.config.replace(**fields))
        return out

    def __repr__(self) -> str:
        cfg = self.config
        defaults = ScenarioConfig().__dict__
        diff = {k: v for k, v in cfg.__dict__.items()
                if defaults.get(k) != v}
        inner = ", ".join(f"{k}={v!r}" for k, v in diff.items())
        return f"Scenario({inner})"


def _as_config(scenario: Scenario | ScenarioConfig) -> ScenarioConfig:
    if isinstance(scenario, Scenario):
        return scenario.config
    if isinstance(scenario, ScenarioConfig):
        return scenario
    raise TypeError(f"expected a Scenario (or ScenarioConfig), "
                    f"got {type(scenario).__name__}")


def run(scenario: Scenario | ScenarioConfig, *,
        cache=None, trace: str | None = None) -> ScenarioResult:
    """Execute one scenario and return its :class:`ScenarioResult`.

    Goes through the batch runner: results are served from the persistent
    cache when the identical configuration has run before (disable with
    ``cache=False`` or ``REPRO_NO_CACHE=1``), and ``trace`` names a
    JSONL(.gz) file to record the run's full event stream into.
    """
    from .runner import run_one
    return run_one(_as_config(scenario), cache=cache, trace=trace)


def sweep(scenarios: Mapping[Any, Scenario | ScenarioConfig], *,
          jobs: int = 1, cache=None,
          trace: str | None = None, **resilience) -> "dict[Any, Any]":
    """Run a labelled batch of scenarios, optionally across ``jobs``
    worker processes; returns ``{label: ScenarioResult}`` in input order.

    Results are deterministic for any ``jobs`` value: every scenario
    derives all randomness from its own ``seed``.  A common shape::

        results = sweep({tp: base.replace(transport=tp)
                         for tp in ("iq", "rudp", "tcp")}, jobs=4)

    Resilience keywords (``on_error="capture"``, ``timeout``, ``retries``,
    ``retry_backoff_s``, ``checkpoint``) pass through to
    :func:`repro.runner.run_batch`; with ``on_error="capture"`` failed
    labels map to :class:`FailedResult` rows instead of raising.
    """
    from .runner import run_batch
    configs = {label: _as_config(sc) for label, sc in scenarios.items()}
    return run_batch(configs, jobs=jobs, cache=cache, trace=trace,
                     **resilience)


def load_result(path: str | os.PathLike) -> ScenarioResult:
    """Load a pickled :class:`ScenarioResult` (e.g. a results-cache
    ``.pkl`` entry) and type-check it.

    Raises ``FileNotFoundError`` for a missing file and ``TypeError`` when
    the pickle holds something other than a scenario result -- loading an
    arbitrary experiment artifact through this accessor is a bug, not a
    result.
    """
    with open(path, "rb") as fh:
        value = pickle.load(fh)
    if not isinstance(value, ScenarioResult):
        raise TypeError(
            f"{os.fspath(path)!r} holds {type(value).__name__}, not a "
            f"ScenarioResult; was it written by the results cache?")
    return value
